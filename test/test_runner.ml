(* Tests for Sim.Runner: aggregation correctness against a manual
   engine loop, quantiles, and common-random-number behaviour. *)

module R = Sim.Runner
module E = Sim.Engine
module P = Sim.Policy
module T = Fault.Trace

let close ?(eps = 1e-9) = Alcotest.(check (float eps))

let params = Fault.Params.make ~lambda:0.002 ~c:10.0 ~r:10.0 ~d:0.0
let horizon = 300.0
let policy = P.equal_segments ~params ~count:2

let traces () =
  T.batch ~dist:(T.Exponential { rate = 0.002 }) ~seed:55L ~n:500

let test_matches_manual_loop () =
  let trace_set = traces () in
  let result = R.evaluate ~params ~horizon ~policy trace_set in
  (* Replay manually: traces are replayable, so the same set can be
     consumed twice. *)
  let manual_work = ref 0.0 and manual_failures = ref 0 in
  Array.iter
    (fun trace ->
      let o = E.run ~params ~horizon ~policy trace in
      manual_work := !manual_work +. o.E.work_saved;
      manual_failures := !manual_failures + o.E.failures)
    trace_set;
  close ~eps:1e-9 "mean work" (!manual_work /. 500.0) result.R.mean_work;
  close ~eps:1e-9 "mean failures"
    (float_of_int !manual_failures /. 500.0)
    result.R.mean_failures;
  Alcotest.(check int) "trace count" 500 result.R.traces;
  Alcotest.(check string) "policy name" "Equal(2)" result.R.policy

let test_quantiles_ordered () =
  let result = R.evaluate ~params ~horizon ~policy (traces ()) in
  let p5, median, p95 = result.R.quantiles in
  Alcotest.(check bool)
    (Printf.sprintf "p5 %.3f <= median %.3f <= p95 %.3f" p5 median p95)
    true
    (p5 <= median && median <= p95);
  Alcotest.(check bool) "mean within [p5, p95]" true
    (result.R.proportion.Numerics.Stats.mean >= p5
    && result.R.proportion.Numerics.Stats.mean <= p95);
  Alcotest.(check bool) "all within [0, 1]" true (p5 >= 0.0 && p95 <= 1.0)

let test_degenerate_quantiles () =
  (* No failures: every trace yields the same proportion. *)
  let quiet = Array.init 20 (fun _ -> T.of_iats [| 1.0e9 |]) in
  let result = R.evaluate ~params ~horizon ~policy quiet in
  let p5, median, p95 = result.R.quantiles in
  let expected = (300.0 -. 20.0) /. (300.0 -. 10.0) in
  close "p5" expected p5;
  close "median" expected median;
  close "p95" expected p95;
  close "zero spread" 0.0 result.R.proportion.Numerics.Stats.stddev

let test_common_random_numbers () =
  (* Two policies evaluated on the same trace array face identical
     failures: the difference of means has much lower variance than
     independent draws would give. Check determinism of the pairing:
     repeating the evaluation yields bit-identical results. *)
  let trace_set = traces () in
  let a1 = R.evaluate ~params ~horizon ~policy trace_set in
  let better = P.equal_segments ~params ~count:3 in
  let b1 = R.evaluate ~params ~horizon ~policy:better trace_set in
  let a2 = R.evaluate ~params ~horizon ~policy trace_set in
  close ~eps:0.0 "replay identical" a1.R.mean_work a2.R.mean_work;
  (* and the two policies genuinely saw the same failures *)
  close ~eps:0.0 "same failure count across policies" a1.R.mean_failures
    b1.R.mean_failures

let test_stream_matches_batch () =
  (* evaluate is now a fold over the stream API; feeding the traces by
     hand must reproduce it bit-for-bit, including exact quantiles. *)
  let trace_set = traces () in
  let batch = R.evaluate ~params ~horizon ~policy trace_set in
  let s = R.stream_create ~params ~horizon ~policy () in
  Array.iter (R.stream_feed s) trace_set;
  Alcotest.(check int) "count" 500 (R.stream_count s);
  let streamed = R.stream_result s in
  Alcotest.(check bool) "bit-identical result" true (batch = streamed)

let test_streaming_quantiles_close_to_exact () =
  let trace_set = traces () in
  let exact = R.evaluate ~params ~horizon ~policy trace_set in
  let approx =
    R.evaluate ~quantile_mode:R.Streaming ~params ~horizon ~policy trace_set
  in
  (* Means and totals do not depend on the quantile mode at all. *)
  close ~eps:0.0 "mean work unchanged" exact.R.mean_work approx.R.mean_work;
  close ~eps:0.0 "mean unchanged" exact.R.proportion.Numerics.Stats.mean
    approx.R.proportion.Numerics.Stats.mean;
  let ep5, emed, ep95 = exact.R.quantiles in
  let ap5, amed, ap95 = approx.R.quantiles in
  close ~eps:0.02 "p5" ep5 ap5;
  close ~eps:0.02 "median" emed amed;
  close ~eps:0.02 "p95" ep95 ap95

let test_stream_result_reusable () =
  let trace_set = traces () in
  let s = R.stream_create ~params ~horizon ~policy () in
  (match R.stream_result s with
  | _ -> Alcotest.fail "empty stream accepted"
  | exception Invalid_argument _ -> ());
  Array.iteri
    (fun i t -> if i < 100 then R.stream_feed s t)
    trace_set;
  let early = R.stream_result s in
  Alcotest.(check int) "early count" 100 early.R.traces;
  Array.iteri
    (fun i t -> if i >= 100 then R.stream_feed s t)
    trace_set;
  let full = R.stream_result s in
  Alcotest.(check bool) "full equals batch" true
    (full = R.evaluate ~params ~horizon ~policy trace_set)

let test_empty_rejected () =
  (match R.evaluate ~params ~horizon ~policy [||] with
  | _ -> Alcotest.fail "empty trace set accepted"
  | exception Invalid_argument _ -> ())

let test_pp_smoke () =
  let result = R.evaluate ~params ~horizon ~policy (traces ()) in
  let s = Format.asprintf "%a" R.pp_result result in
  Alcotest.(check bool) "mentions policy" true (String.length s > 20)

let () =
  Alcotest.run "runner"
    [
      ( "aggregation",
        [
          Alcotest.test_case "matches manual loop" `Quick test_matches_manual_loop;
          Alcotest.test_case "quantiles ordered" `Quick test_quantiles_ordered;
          Alcotest.test_case "degenerate quantiles" `Quick
            test_degenerate_quantiles;
          Alcotest.test_case "common random numbers" `Quick
            test_common_random_numbers;
          Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
          Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "stream matches batch" `Quick
            test_stream_matches_batch;
          Alcotest.test_case "p2 quantiles close to exact" `Quick
            test_streaming_quantiles_close_to_exact;
          Alcotest.test_case "stream result reusable" `Quick
            test_stream_result_reusable;
        ] );
    ]
