(* Tests for Core.Threshold: the exact gain formula against a brute-force
   evaluation, the threshold tables, and their asymptotics. *)

module Th = Core.Threshold
module P = Fault.Params

let close ?(eps = 1e-9) = Alcotest.(check (float eps))

let params = P.paper ~lambda:0.001 ~c:20.0 ~d:0.0

let test_gain_equals_brute_force () =
  (* The slice decomposition of Section 5 must agree exactly with the
     direct expected-work difference of the two explicit plans. *)
  List.iter
    (fun (lambda, c, t, n) ->
      let params = P.paper ~lambda ~c ~d:0.0 in
      close ~eps:1e-10
        (Printf.sprintf "λ=%g C=%g T=%g n=%d" lambda c t n)
        (Th.gain_brute_force ~params ~t ~n)
        (Th.gain ~params ~t ~n))
    [
      (0.001, 20.0, 300.0, 1);
      (0.001, 20.0, 500.0, 2);
      (0.001, 20.0, 800.0, 3);
      (0.01, 10.0, 120.0, 1);
      (0.01, 80.0, 900.0, 2);
      (0.0001, 160.0, 1800.0, 1);
      (0.005, 40.0, 1500.0, 5);
    ]

let test_gain_negative_for_short_reservations () =
  (* Just above the feasibility bound, the extra checkpoint cannot pay
     off. *)
  Alcotest.(check bool) "negative near the bound" true
    (Th.gain ~params ~t:60.0 ~n:1 < 0.0)

let test_gain_positive_beyond_threshold () =
  let t2 = Th.threshold_numerical ~params 1 in
  Alcotest.(check bool) "positive after T_2" true
    (Th.gain ~params ~t:(t2 +. 10.0) ~n:1 > 0.0);
  Alcotest.(check bool) "negative before T_2" true
    (Th.gain ~params ~t:(t2 -. 10.0) ~n:1 < 0.0);
  close ~eps:1e-6 "zero at T_2" 0.0 (Th.gain ~params ~t:t2 ~n:1)

let test_threshold_first_order_values () =
  (* T_{n+1} = sqrt(2 n (n+1) C / λ); for λ=0.001, C=20:
     T_2 = sqrt(2*1*2*20*1000) = sqrt(80000). *)
  close ~eps:1e-9 "T_2 first order" (sqrt 80_000.0)
    (Th.threshold_first_order ~params ~n:1);
  close ~eps:1e-9 "T_3 first order" (sqrt 240_000.0)
    (Th.threshold_first_order ~params ~n:2)

let test_first_order_is_sqrt2_young_daly () =
  (* T_2 = sqrt(2) * W_YD: the paper's headline comparison. *)
  close ~eps:1e-9 "sqrt(2) W_YD"
    (sqrt 2.0 *. Core.Model.young_daly_period params)
    (Th.threshold_first_order ~params ~n:1)

let test_numerical_close_to_first_order_small_lambda () =
  (* As λ -> 0 the numerical thresholds approach the first-order ones. *)
  let rel_gap lambda n =
    let params = P.paper ~lambda ~c:20.0 ~d:0.0 in
    let numerical = Th.threshold_numerical ~params n in
    let fo = Th.threshold_first_order ~params ~n in
    abs_float (numerical -. fo) /. fo
  in
  Alcotest.(check bool) "gap shrinks with lambda" true
    (rel_gap 1e-5 1 < rel_gap 1e-3 1);
  Alcotest.(check bool) "small at 1e-6" true (rel_gap 1e-6 1 < 0.02)

let test_geometric_mean_close () =
  (* The geometric-mean approximation from the paper stays within a few
     percent of the numerical threshold in the Young/Daly regime. *)
  let params = P.paper ~lambda:0.0001 ~c:20.0 ~d:0.0 in
  List.iter
    (fun n ->
      let numerical = Th.threshold_numerical ~params n in
      let gm = Th.geometric_mean_approx ~params ~n in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d: |%.1f - %.1f| < 5%%" n numerical gm)
        true
        (abs_float (numerical -. gm) /. numerical < 0.05))
    [ 1; 2; 3 ]

let test_table_monotone () =
  let table = Th.table_numerical ~params ~up_to:2000.0 in
  let t = table.Th.thresholds in
  Alcotest.(check bool) "at least 5 thresholds" true (Array.length t >= 5);
  close "T_1 = 0" 0.0 t.(0);
  for i = 0 to Array.length t - 2 do
    if t.(i + 1) <= t.(i) then
      Alcotest.failf "thresholds not increasing at %d: %g vs %g" i t.(i)
        t.(i + 1)
  done

let test_table_feasibility () =
  (* T_{n+1} must leave room for n+1 checkpoints. *)
  let table = Th.table_numerical ~params ~up_to:2000.0 in
  Array.iteri
    (fun i t ->
      if i > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "T_%d >= %d C" (i + 1) (i + 1))
          true
          (t >= float_of_int (i + 1) *. params.P.c -. 1e-9))
    table.Th.thresholds

let test_segments_for () =
  let table = Th.table_numerical ~params ~up_to:2000.0 in
  let t2 = table.Th.thresholds.(1) in
  Alcotest.(check int) "1 segment below T_2" 1
    (Th.segments_for table ~tleft:(t2 -. 1.0));
  Alcotest.(check int) "2 segments above T_2" 2
    (Th.segments_for table ~tleft:(t2 +. 1.0));
  Alcotest.(check int) "1 segment for tiny tleft" 1
    (Th.segments_for table ~tleft:1.0);
  (* at the table's end, count equals the table's size *)
  Alcotest.(check int) "top of table"
    (Array.length table.Th.thresholds)
    (Th.segments_for table ~tleft:1.0e9)

let test_first_order_table () =
  let table = Th.table_first_order ~params ~up_to:2000.0 in
  let reference = Th.threshold_first_order ~params ~n:1 in
  close ~eps:1e-9 "first entry after sentinel" reference table.Th.thresholds.(1)

let test_validation () =
  Alcotest.check_raises "gain n=0" (Invalid_argument "Threshold.gain: n < 1")
    (fun () -> ignore (Th.gain ~params ~t:100.0 ~n:0));
  Alcotest.check_raises "gain t=0" (Invalid_argument "Threshold.gain: t <= 0")
    (fun () -> ignore (Th.gain ~params ~t:0.0 ~n:1))

(* With C = 0 every threshold collapses to 0 and the table builders
   would scan forever: they must reject instead of hanging. *)
let test_tables_reject_zero_c () =
  let params = P.make ~lambda:0.001 ~c:0.0 ~r:0.0 ~d:0.0 in
  Alcotest.check_raises "numerical table C=0"
    (Invalid_argument "Threshold.table_numerical: thresholds degenerate for C = 0")
    (fun () -> ignore (Th.table_numerical ~params ~up_to:100.0));
  Alcotest.check_raises "first-order table C=0"
    (Invalid_argument
       "Threshold.table_first_order: thresholds degenerate for C = 0")
    (fun () -> ignore (Th.table_first_order ~params ~up_to:100.0))

let qcheck_tests =
  let arb =
    QCheck.make
      QCheck.Gen.(
        let* lambda = float_range 1e-5 0.02 in
        let* c = float_range 2.0 100.0 in
        let* n = int_range 1 6 in
        let* factor = float_range 1.2 8.0 in
        return (P.paper ~lambda ~c ~d:0.0, factor *. float_of_int (n + 1) *. c, n))
      ~print:(fun (p, t, n) ->
        Printf.sprintf "%s t=%g n=%d" (P.to_string p) t n)
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"gain formula = brute force (random)" ~count:500
         arb (fun (params, t, n) ->
           let a = Th.gain ~params ~t ~n in
           let b = Th.gain_brute_force ~params ~t ~n in
           abs_float (a -. b) <= 1e-8 *. (1.0 +. abs_float a)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"numerical threshold within feasible range"
         ~count:100
         (QCheck.make
            QCheck.Gen.(
              let* lambda = float_range 1e-4 0.01 in
              let* c = float_range 5.0 50.0 in
              return (P.paper ~lambda ~c ~d:0.0))
            ~print:P.to_string)
         (fun params ->
           let t2 = Th.threshold_numerical ~params 1 in
           t2 >= 2.0 *. params.P.c -. 1e-9
           && t2 <= 10.0 *. Th.threshold_first_order ~params ~n:1));
  ]

let () =
  Alcotest.run "threshold"
    [
      ( "gain",
        [
          Alcotest.test_case "equals brute force" `Quick test_gain_equals_brute_force;
          Alcotest.test_case "negative for short T" `Quick
            test_gain_negative_for_short_reservations;
          Alcotest.test_case "sign change at threshold" `Quick
            test_gain_positive_beyond_threshold;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "first order",
        [
          Alcotest.test_case "equation (5) values" `Quick
            test_threshold_first_order_values;
          Alcotest.test_case "sqrt(2) Young/Daly" `Quick
            test_first_order_is_sqrt2_young_daly;
          Alcotest.test_case "approaches numerical" `Quick
            test_numerical_close_to_first_order_small_lambda;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean_close;
        ] );
      ( "tables",
        [
          Alcotest.test_case "monotone" `Quick test_table_monotone;
          Alcotest.test_case "feasible" `Quick test_table_feasibility;
          Alcotest.test_case "segments_for" `Quick test_segments_for;
          Alcotest.test_case "first-order table" `Quick test_first_order_table;
          Alcotest.test_case "reject C = 0" `Quick test_tables_reject_zero_c;
        ] );
      ("properties", qcheck_tests);
    ]
