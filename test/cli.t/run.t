Golden tests for the fixedlen CLI. Everything below is deterministic:
fixed seeds, analytic computations, no wall-clock dependence.

The figure registry:

  $ ../../bin/main.exe list
  fig2                 proportion of work, λ=0.001, D=0, all C
  fig3                 extreme case: λ=0.01, D=0, C ∈ {80, 160}
  fig4                 impact of the DP quantum, λ=0.001, D=0, C=20
  fig5                 quantum impact, short reservations (fig4, T <= 100)
  fig6                 proportion of work, λ=0.01, D=0, all C
  fig7                 proportion of work, λ=0.001, D=0, all C (= fig2)
  fig8                 proportion of work, λ=0.0001, D=0, all C
  fig9                 proportion of work, λ=0.01, D=5, all C
  fig10                proportion of work, λ=0.001, D=5, all C
  fig11                proportion of work, λ=0.0001, D=5, all C
  fig12                quantum impact across C, λ=0.0001, D=0
  ext-weibull          robustness: Weibull(k=0.7) failures with the exponential-model policies, λ-equivalent MTBF 1000, D=0
  ext-lognormal        robustness: LogNormal(σ=1.2) failures, MTBF 1000, D=0
  ext-renewal          extension: renewal-aware DP vs exponential-derived strategies on Weibull(k=0.7) failures, MTBF 1000, C=20, D=0
  ext-ablation         ablation: fixed-work-optimal periods, single-final checkpoint, continuous-offset and k-free optima against the paper strategies (λ=0.001, D=0, C=20)
  ext-stochastic-ckpt  robustness: checkpoint duration Erlang(4) with mean C, λ=0.001, D=0
  ext-replan           malleability: 16-node platform, each failure fatal to its node with probability 0.25, 2 spares rejoining after one downtime — static-λ strategies vs online re-planning (λ=0.001, D=5, C=20)
  ext-predict          prediction: perfect predictor (p=1, r=1) with window w=30 >= C — corrected-period YoungDaly and window-trusting DP with proactive checkpoints vs the unpredicted strategies (λ=0.001, D=5, C=20)

Section 4 case studies:

  $ ../../bin/main.exe analysis
  == Section 4.2: single checkpoint in a short reservation ==
  setting: T=6, C=R=4, D=0; gain of checkpointing at the end
  crossover rate: ln 2 = 0.693147
      λ  gain(end vs early)  better               
  ------------------------------------------------
  0.100            +0.49109  checkpoint at the end
  0.300            +0.10747  checkpoint at the end
  0.500            +0.01749  checkpoint at the end
  0.693            +0.00000  checkpoint at the end
  0.800            -0.00186  checkpoint early     
  1.000            -0.00178  checkpoint early     
  1.500            -0.00031  checkpoint early     
  
  == Section 4.3: optimal two-checkpoint split α_opt(T) ==
     T   α_opt  first ckpt at  equal split would be
  -------------------------------------------------
   100  0.5960           59.6                  50.0
   200  0.5397          107.9                 100.0
   400  0.5017          200.7                 200.0
   800  0.4621          369.7                 400.0
  1600  0.3987          637.9                 800.0
  3200  0.2869          917.9                1600.0
  (α_opt → 1/2 as λ → 0: equal splitting is only asymptotically optimal)

Threshold tables (Section 5):

  $ ../../bin/main.exe thresholds --lambda 0.001 --c 20 --up-to 700
  thresholds for {λ=0.001; C=20; R=20; D=0} (plan n checkpoints when T_n <= time left < T_n+1)
  Young/Daly period: 200.00
  n  T_n numerical  T_n first-order  geometric-mean approx
  --------------------------------------------------------
  1           0.00                0                      -
  2         293.27           282.84                 282.84
  3         507.19           489.90                 489.90

The dynamic program on a small instance:

  $ ../../bin/main.exe dp --lambda 0.01 --c 10 --length 150 --quantum 1
  DP for {λ=0.01; C=10; R=10; D=0}, T=150, u=1 (kmax=15)
  expected work: 82.4723 (upper bound 140.0000, proportion 0.5891)
  optimal number of checkpoints: 3
  failure-free checkpoint completions: 49, 99, 150
  strategy            expected work
  ---------------------------------
  DynamicProgramming        82.4723
  NumericalOptimum          82.4112
  FirstOrder                82.3488
  YoungDaly                 81.5239
  SingleFinal               61.4941

Trace files round-trip:

  $ ../../bin/main.exe traces --count 5 --horizon 100 --out t.txt --seed 7
  wrote 5 traces covering horizon 100 to t.txt
  $ ../../bin/main.exe traces --check t.txt
  t.txt: 5 traces, 6 IATs, empirical MTBF 1702.12 (min 0.653, max 4.66e+03)

Unknown figures are rejected:

  $ ../../bin/main.exe figure fig99 --quiet 2>/dev/null
  [2]

An unwritable journal path is an operational error: one line naming the
path and the cause, exit 1, no backtrace.

  $ ../../bin/main.exe figure fig3 --traces 2 --t-step 900 --quiet --no-plot \
  >   --journal /nonexistent-dir/j.journal
  fixedlen: cannot open journal /nonexistent-dir/j.journal: No such file or directory
  [1]

So is a corrupted trace file under --check: the typed read error becomes
a one-line diagnosis carrying both checksums.

  $ printf '# fixedlen-traces v1 1 100 0000000000000000\n1.0\n' > corrupt.txt
  $ ../../bin/main.exe traces --check corrupt.txt
  fixedlen: Trace_io.load: corrupt.txt is corrupted or truncated: payload checksum 41e841f1165b0308 does not match header 0000000000000000
  [1]

The reservation-series and breakdown subcommands are deterministic for a
fixed seed:

  $ ../../bin/main.exe series --lambda 0.01 --c 10 --reservation 150 --work 500 --repetitions 20 --seed 3
  campaign of 500 work units in reservations of 150 on {λ=0.01; C=10; R=10; D=0} (20 repetitions)
  strategy            reservations  ±95%  billed time  incomplete
  ---------------------------------------------------------------
  YoungDaly                   6.45  0.46          968           0
  FirstOrder                  6.40  0.36          960           0
  NumericalOptimum            6.45  0.48          968           0
  DynamicProgramming          6.45  0.48          968           0
  SingleFinal                 8.30  1.16         1245           0

  $ ../../bin/main.exe breakdown --lambda 0.01 --c 10 --length 200 --traces 50 --seed 3
  where does the reservation go? {λ=0.01; C=10; R=10; D=0}, T=200, 50 traces
  strategy            work %  ckpt %  recovery %  down %  lost %  unused %
  ------------------------------------------------------------------------
  YoungDaly             53.6    13.7         6.0     0.0    25.8       0.9
  FirstOrder            55.7    17.9         6.1     0.0    19.4       0.9
  NumericalOptimum      55.2    14.9         6.1     0.0    22.9       0.9
  DynamicProgramming    55.3    14.9         6.0     0.0    22.5       1.3

Exact (noise-free) figure regeneration is fully deterministic:

  $ ../../bin/main.exe exact fig3 --t-step 400 --no-plot --csv exact.csv
  wrote exact.csv
  $ cat exact.csv
  figure,c,strategy,t,exact_proportion
  fig3,80,YoungDaly,480,0.09673243
  fig3,80,YoungDaly,880,0.08979773
  fig3,80,YoungDaly,1280,0.08712689
  fig3,80,YoungDaly,1680,0.08578825
  fig3,80,FirstOrder,480,0.09356085
  fig3,80,FirstOrder,880,0.08812476
  fig3,80,FirstOrder,1280,0.08611744
  fig3,80,FirstOrder,1680,0.08485464
  fig3,80,NumericalOptimum,480,0.10726654
  fig3,80,NumericalOptimum,880,0.09783897
  fig3,80,NumericalOptimum,1280,0.09542387
  fig3,80,NumericalOptimum,1680,0.09396618
  fig3,80,DynamicProgramming,480,0.10835413
  fig3,80,DynamicProgramming,880,0.09933777
  fig3,80,DynamicProgramming,1280,0.09638679
  fig3,80,DynamicProgramming,1680,0.09491017
  fig3,160,YoungDaly,560,0.02264108
  fig3,160,YoungDaly,960,0.01681356
  fig3,160,YoungDaly,1360,0.01537834
  fig3,160,YoungDaly,1760,0.01466781
  fig3,160,FirstOrder,560,0.01833104
  fig3,160,FirstOrder,960,0.01467334
  fig3,160,FirstOrder,1360,0.00927346
  fig3,160,FirstOrder,1760,0.00944961
  fig3,160,NumericalOptimum,560,0.02645183
  fig3,160,NumericalOptimum,960,0.02117615
  fig3,160,NumericalOptimum,1360,0.01929574
  fig3,160,NumericalOptimum,1760,0.01853704
  fig3,160,DynamicProgramming,560,0.02788277
  fig3,160,DynamicProgramming,960,0.02199357
  fig3,160,DynamicProgramming,1360,0.02005277
  fig3,160,DynamicProgramming,1760,0.01908249
