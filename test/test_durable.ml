(* Tests for Robust.Durable (atomic publish, framed append-only stores,
   quarantine) and Robust.Chaos_fs (deterministic filesystem fault
   injection). The centrepiece is the truncation property: a framed
   store cut at EVERY byte offset recovers exactly the prefix of intact
   records, without ever raising. *)

module D = Robust.Durable
module Chaos_fs = Robust.Chaos_fs

let with_temp f =
  let path = Filename.temp_file "fixedlen_durable" ".bin" in
  let rm p = try Sys.remove p with Sys_error _ -> () in
  Fun.protect
    ~finally:(fun () ->
      List.iter rm
        [ path; path ^ ".tmp"; path ^ ".quarantine"; path ^ ".quarantine.reason" ])
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

(* Framed roundtrip *)

(* Payloads chosen to defeat a parser that trusts content instead of the
   length prefix: newlines, spaces, digit prefixes that look like frame
   headers, emptiness. *)
let nasty_payloads =
  [
    "plain";
    "";
    "with several spaces";
    "multi\nline\npayload";
    "7 digits leading like a frame";
    "trailing newline\n";
    "tab\tand\rcarriage";
    String.make 100 'x';
  ]

let test_framed_roundtrip () =
  with_temp (fun path ->
      let w = D.Framed.create ~point:"t" ~path ~header:"# store v1" () in
      List.iter (D.Framed.append w) nasty_payloads;
      D.Framed.close w;
      let s = D.Framed.scan ~path in
      Alcotest.(check (option string)) "header" (Some "# store v1")
        s.D.Framed.header;
      Alcotest.(check (option (pair int string))) "clean tail" None
        s.D.Framed.tail_error;
      Alcotest.(check (list string)) "payloads survive verbatim"
        nasty_payloads
        (List.map snd s.D.Framed.records))

let test_framed_append_reopen () =
  with_temp (fun path ->
      let w = D.Framed.create ~point:"t" ~path ~header:"# store v1" () in
      D.Framed.append w "one";
      D.Framed.close w;
      let s = D.Framed.scan ~path in
      let w =
        D.Framed.open_append ~point:"t" ~path ~keep:s.D.Framed.length ()
      in
      D.Framed.append w "two";
      D.Framed.close w;
      let s = D.Framed.scan ~path in
      Alcotest.(check (list string)) "both records" [ "one"; "two" ]
        (List.map snd s.D.Framed.records))

(* The truncation property (satellite: property-style test). For several
   random record sequences, cut the store at every byte offset: the scan
   must recover exactly the records whose frames are complete before the
   cut, flag a tail error iff the cut is mid-frame, and never raise. *)

let test_truncation_property () =
  let st = Random.State.make [| 0xD00D |] in
  with_temp (fun path ->
      with_temp (fun cut_path ->
          for _seq_no = 1 to 6 do
            let n_records = 1 + Random.State.int st 6 in
            let payloads =
              List.init n_records (fun _ ->
                  String.init
                    (Random.State.int st 40)
                    (fun _ -> Char.chr (Random.State.int st 256)))
            in
            let header = "# trunc-prop v1" in
            let w = D.Framed.create ~point:"t" ~path ~header () in
            List.iter (D.Framed.append w) payloads;
            D.Framed.close w;
            let content = read_file path in
            (* Byte offset where each record's frame ends. *)
            let header_end = String.length header + 1 in
            let boundaries =
              List.rev
                (List.fold_left
                   (fun acc p ->
                     let last = List.hd acc in
                     (last + String.length (D.Framed.frame p)) :: acc)
                   [ header_end ] payloads)
            in
            for cut = 0 to String.length content do
              write_file cut_path (String.sub content 0 cut);
              let s = D.Framed.scan ~path:cut_path in
              let expected_n =
                (* boundaries = header_end :: frame ends; record i is
                   intact iff its end offset fits inside the cut. *)
                List.length (List.filter (fun b -> b <= cut) (List.tl boundaries))
              in
              let expected =
                List.filteri (fun i _ -> i < expected_n) payloads
              in
              Alcotest.(check (list string))
                (Printf.sprintf "cut at %d recovers the intact prefix" cut)
                expected
                (List.map snd s.D.Framed.records);
              if cut >= header_end then begin
                let at_boundary = List.mem cut boundaries in
                Alcotest.(check bool)
                  (Printf.sprintf "cut at %d flags damage iff mid-frame" cut)
                  (not at_boundary)
                  (s.D.Framed.tail_error <> None)
              end
            done
          done))

(* Atomic publish *)

let test_write_atomic_publishes () =
  with_temp (fun path ->
      D.write_atomic ~path "first version\n";
      Alcotest.(check string) "published" "first version\n" (read_file path);
      D.write_atomic ~path "second version\n";
      Alcotest.(check string) "replaced" "second version\n" (read_file path);
      Alcotest.(check bool) "no temp file left" false
        (Sys.file_exists (path ^ ".tmp")))

let test_write_atomic_failure_keeps_previous () =
  with_temp (fun path ->
      D.write_atomic ~path "good";
      let chaos = Chaos_fs.create ~error_rate:1.0 ~seed:5L () in
      (match D.write_atomic ~chaos ~path "never lands" with
      | () -> Alcotest.fail "injected write error did not surface"
      | exception Unix.Unix_error ((Unix.EIO | Unix.ENOSPC), _, _) -> ());
      Alcotest.(check string) "previous content intact" "good"
        (read_file path);
      Alcotest.(check bool) "failed temp removed" false
        (Sys.file_exists (path ^ ".tmp")))

(* Chaos_fs: short writes must be transparent (the write loop finishes
   the rest), errors must repair the store, plans must be deterministic. *)

let test_short_writes_transparent () =
  with_temp (fun path ->
      let reference = with_temp (fun p2 ->
          let w = D.Framed.create ~point:"t" ~path:p2 ~header:"# h" () in
          List.iter (D.Framed.append w) nasty_payloads;
          D.Framed.close w;
          read_file p2)
      in
      let chaos = Chaos_fs.create ~short_write_rate:1.0 ~seed:7L () in
      let w = D.Framed.create ~chaos ~point:"t" ~path ~header:"# h" () in
      List.iter (D.Framed.append w) nasty_payloads;
      D.Framed.close w;
      Alcotest.(check bool) "short writes actually struck" true
        (Chaos_fs.injected_short_writes chaos > 0);
      Alcotest.(check string) "byte-identical under short writes" reference
        (read_file path))

let test_failed_append_repairs_store () =
  with_temp (fun path ->
      let w = D.Framed.create ~point:"t" ~path ~header:"# h" () in
      D.Framed.append w "one";
      D.Framed.append w "two";
      D.Framed.close w;
      let clean = read_file path in
      let chaos = Chaos_fs.create ~error_rate:1.0 ~seed:11L () in
      let w =
        D.Framed.open_append ~chaos ~point:"t" ~path
          ~keep:(String.length clean) ()
      in
      (match D.Framed.append w "three" with
      | () -> Alcotest.fail "injected append error did not surface"
      | exception Unix.Unix_error ((Unix.EIO | Unix.ENOSPC), _, _) -> ());
      D.Framed.close w;
      Alcotest.(check bool) "error was injected" true
        (Chaos_fs.injected_errors chaos > 0);
      (* The failed append wrote a prefix, then repair truncated it away:
         the store is byte-identical to before and cleanly appendable. *)
      Alcotest.(check string) "repaired to the record boundary" clean
        (read_file path);
      let w =
        D.Framed.open_append ~point:"t" ~path ~keep:(String.length clean) ()
      in
      D.Framed.append w "three";
      D.Framed.close w;
      let s = D.Framed.scan ~path in
      Alcotest.(check (list string)) "retry lands on a clean tail"
        [ "one"; "two"; "three" ]
        (List.map snd s.D.Framed.records);
      Alcotest.(check (option (pair int string))) "no damage" None
        s.D.Framed.tail_error)

let test_plans_deterministic () =
  let plans_of chaos =
    List.init 50 (fun _ -> Chaos_fs.plan chaos ~point:"p" ~len:100)
  in
  let a = plans_of (Chaos_fs.create ~error_rate:0.4 ~short_write_rate:0.4 ~seed:3L ()) in
  let b = plans_of (Chaos_fs.create ~error_rate:0.4 ~short_write_rate:0.4 ~seed:3L ()) in
  Alcotest.(check bool) "same seed replays the same plans" true (a = b);
  List.iter
    (function
      | Chaos_fs.Write_all -> ()
      | Chaos_fs.Short_write n | Chaos_fs.Fail_after (n, _)
      | Chaos_fs.Crash_after n ->
          if n <= 0 || n >= 100 then
            Alcotest.failf "prefix %d not strictly inside (0, 100)" n)
    a;
  let kinds l =
    List.length (List.filter (function Chaos_fs.Write_all -> false | _ -> true) l)
  in
  Alcotest.(check bool) "rate 0.4 struck some writes" true (kinds a > 0);
  Alcotest.(check bool) "rate 0.4 spared some writes" true (kinds a < 50)

let test_crash_plan_exact_seq () =
  let chaos = Chaos_fs.create ~crash_at:[ ("p", 2) ] ~seed:1L () in
  (* seq 0, 1: untouched; seq 2: the planned crash; seq 3: untouched.
     Other points never crash. *)
  Alcotest.(check bool) "seq 0 clean" true
    (Chaos_fs.plan chaos ~point:"p" ~len:50 = Chaos_fs.Write_all);
  Alcotest.(check bool) "seq 1 clean" true
    (Chaos_fs.plan chaos ~point:"p" ~len:50 = Chaos_fs.Write_all);
  (match Chaos_fs.plan chaos ~point:"p" ~len:50 with
  | Chaos_fs.Crash_after n when n > 0 && n < 50 -> ()
  | p ->
      Alcotest.failf "seq 2 planned %s, wanted a mid-record crash"
        (match p with
        | Chaos_fs.Write_all -> "Write_all"
        | Chaos_fs.Short_write _ -> "Short_write"
        | Chaos_fs.Fail_after _ -> "Fail_after"
        | Chaos_fs.Crash_after n -> Printf.sprintf "Crash_after %d" n));
  Alcotest.(check bool) "seq 3 clean" true
    (Chaos_fs.plan chaos ~point:"p" ~len:50 = Chaos_fs.Write_all);
  Alcotest.(check bool) "other points untouched" true
    (Chaos_fs.plan chaos ~point:"q" ~len:50 = Chaos_fs.Write_all)

let test_chaos_fs_validation () =
  List.iter
    (fun thunk ->
      match thunk () with
      | (_ : Chaos_fs.t) -> Alcotest.fail "invalid config accepted"
      | exception Invalid_argument _ -> ())
    [
      (fun () -> Chaos_fs.create ~error_rate:1.5 ~seed:0L ());
      (fun () -> Chaos_fs.create ~short_write_rate:(-0.1) ~seed:0L ());
      (fun () -> Chaos_fs.create ~crash_at:[ ("", 0) ] ~seed:0L ());
      (fun () -> Chaos_fs.create ~crash_at:[ ("p", -1) ] ~seed:0L ());
    ]

let test_parse_crash_at () =
  let pt = Alcotest.(option (pair string int)) in
  Alcotest.check pt "well-formed" (Some ("journal", 5))
    (Chaos_fs.parse_crash_at "journal:5");
  Alcotest.check pt "colon in point name" (Some ("a:b", 3))
    (Chaos_fs.parse_crash_at "a:b:3");
  Alcotest.check pt "no colon" None (Chaos_fs.parse_crash_at "journal");
  Alcotest.check pt "empty point" None (Chaos_fs.parse_crash_at ":5");
  Alcotest.check pt "non-numeric seq" None (Chaos_fs.parse_crash_at "p:x");
  Alcotest.check pt "negative seq" None (Chaos_fs.parse_crash_at "p:-1")

(* Quarantine *)

let test_quarantine_moves_and_explains () =
  with_temp (fun path ->
      write_file path "sick bytes";
      let qpath = D.quarantine ~path ~reason:"header checksum blew up" in
      Alcotest.(check string) "returned path" (path ^ ".quarantine") qpath;
      Alcotest.(check bool) "original gone" false (Sys.file_exists path);
      Alcotest.(check string) "content preserved" "sick bytes"
        (read_file qpath);
      let sidecar = read_file (qpath ^ ".reason") in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        nn = 0 || go 0
      in
      Alcotest.(check bool) "sidecar names the file" true
        (contains sidecar path);
      Alcotest.(check bool) "sidecar carries the reason" true
        (contains sidecar "header checksum blew up"))

let () =
  Alcotest.run "durable"
    [
      ( "framed",
        [
          Alcotest.test_case "nasty payload roundtrip" `Quick
            test_framed_roundtrip;
          Alcotest.test_case "append after reopen" `Quick
            test_framed_append_reopen;
          Alcotest.test_case "recovery under every truncation offset" `Quick
            test_truncation_property;
        ] );
      ( "atomic publish",
        [
          Alcotest.test_case "publishes and replaces" `Quick
            test_write_atomic_publishes;
          Alcotest.test_case "failure keeps previous version" `Quick
            test_write_atomic_failure_keeps_previous;
        ] );
      ( "chaos_fs",
        [
          Alcotest.test_case "short writes transparent" `Quick
            test_short_writes_transparent;
          Alcotest.test_case "failed append repairs the store" `Quick
            test_failed_append_repairs_store;
          Alcotest.test_case "plans deterministic, prefixes torn" `Quick
            test_plans_deterministic;
          Alcotest.test_case "crash plan strikes its exact seq" `Quick
            test_crash_plan_exact_seq;
          Alcotest.test_case "validation" `Quick test_chaos_fs_validation;
          Alcotest.test_case "parse_crash_at" `Quick test_parse_crash_at;
        ] );
      ( "quarantine",
        [
          Alcotest.test_case "moves the file and explains why" `Quick
            test_quarantine_moves_and_explains;
        ] );
    ]
