(* Byte accounting of the flat DP tables (Core.Tables and the [bytes]
   accessors of the table-building cores). The LRU cache charges
   memory through these numbers, so the arithmetic is pinned exactly —
   a silent change here silently re-sizes every bounded cache. *)

module Tables = Core.Tables

let test_f_bytes () =
  let t = Tables.F.create ~rows:3 ~cols:5 in
  Alcotest.(check int) "F bytes = 8*rows*cols" 120 (Tables.F.bytes t);
  Alcotest.(check int) "F words = rows*cols" 15 (Tables.F.words t)

let test_i_bytes_width_selection () =
  let small = Tables.I.create ~rows:3 ~cols:5 ~max_value:100 in
  Alcotest.(check int) "int16 cell" 2 (Tables.I.bytes_per_cell small);
  Alcotest.(check int) "int16 bytes" 30 (Tables.I.bytes small);
  let big = Tables.I.create ~rows:3 ~cols:5 ~max_value:40_000 in
  Alcotest.(check int) "int32 cell" 4 (Tables.I.bytes_per_cell big);
  Alcotest.(check int) "int32 bytes" 60 (Tables.I.bytes big);
  (* the boundary value still fits in int16 *)
  let edge = Tables.I.create ~rows:1 ~cols:1 ~max_value:32767 in
  Alcotest.(check int) "32767 is int16" 2 (Tables.I.bytes edge)

let test_tri_bytes () =
  (* side = 4: rows hold 5+4+3+2+1 = 15 cells *)
  let t = Tables.Tri.create ~side:4 in
  Alcotest.(check int) "Tri bytes = 8*cells" 120 (Tables.Tri.bytes t);
  let it = Tables.Itri.create ~side:4 ~max_value:100 in
  Alcotest.(check int) "Itri int16 bytes = 2*cells" 30 (Tables.Itri.bytes it);
  let it32 = Tables.Itri.create ~side:4 ~max_value:100_000 in
  Alcotest.(check int) "Itri int32 bytes = 4*cells" 60 (Tables.Itri.bytes it32)

(* The cores' [bytes] must equal the sum of their declared buffers:
   these are the exact formulas the builds allocate with, restated. *)

let params = Fault.Params.paper ~lambda:0.01 ~c:5.0 ~d:0.0

let test_dp_bytes () =
  let dp = Core.Dp.build ~params ~quantum:1.0 ~horizon:50.0 () in
  let cols = Core.Dp.horizon_quanta dp + 1 in
  let rows = Core.Dp.kmax dp + 1 in
  (* e0 + e1 (Float64) + ib0 + ib1 + argm1 (all int16 at this size) +
     the bestk0 row of native ints *)
  let expect = (2 * 8 * rows * cols) + (3 * 2 * rows * cols) + (8 * cols) in
  Alcotest.(check int) "Dp.bytes matches its buffers" expect (Core.Dp.bytes dp)

let test_optimal_bytes () =
  let opt = Core.Optimal.build ~params ~quantum:1.0 ~horizon:50.0 () in
  let cols = Core.Optimal.horizon_quanta opt + 1 in
  Alcotest.(check int) "Optimal.bytes = 4 float rows" (8 * 4 * cols)
    (Core.Optimal.bytes opt)

let test_renewal_bytes () =
  let dist = Fault.Trace.Exponential { rate = 0.01 } in
  let t = Core.Dp_renewal.build ~params ~dist ~quantum:1.0 ~horizon:30.0 () in
  let tstar = Core.Dp_renewal.horizon_quanta t in
  let cells = (tstar + 1) * (tstar + 2) / 2 in
  let expect = (8 * cells) + (2 * cells) + (2 * 8 * (tstar + 1)) in
  Alcotest.(check int) "Dp_renewal.bytes matches its buffers" expect
    (Core.Dp_renewal.bytes t)

let () =
  Alcotest.run "tables"
    [
      ( "bytes",
        [
          Alcotest.test_case "F" `Quick test_f_bytes;
          Alcotest.test_case "I width selection" `Quick
            test_i_bytes_width_selection;
          Alcotest.test_case "Tri/Itri" `Quick test_tri_bytes;
          Alcotest.test_case "Dp" `Quick test_dp_bytes;
          Alcotest.test_case "Optimal" `Quick test_optimal_bytes;
          Alcotest.test_case "Dp_renewal" `Quick test_renewal_bytes;
        ] );
    ]
