(* Byte accounting of the flat DP tables (Core.Tables and the [bytes]
   accessors of the table-building cores). The LRU cache charges
   memory through these numbers, so the arithmetic is pinned exactly —
   a silent change here silently re-sizes every bounded cache. *)

module Tables = Core.Tables

let test_f_bytes () =
  let t = Tables.F.create ~rows:3 ~cols:5 in
  Alcotest.(check int) "F bytes = 8*rows*cols" 120 (Tables.F.bytes t);
  Alcotest.(check int) "F words = rows*cols" 15 (Tables.F.words t)

let test_i_bytes_width_selection () =
  let small = Tables.I.create ~rows:3 ~cols:5 ~max_value:100 in
  Alcotest.(check int) "int16 cell" 2 (Tables.I.bytes_per_cell small);
  Alcotest.(check int) "int16 bytes" 30 (Tables.I.bytes small);
  let big = Tables.I.create ~rows:3 ~cols:5 ~max_value:40_000 in
  Alcotest.(check int) "int32 cell" 4 (Tables.I.bytes_per_cell big);
  Alcotest.(check int) "int32 bytes" 60 (Tables.I.bytes big);
  (* the boundary value still fits in int16 *)
  let edge = Tables.I.create ~rows:1 ~cols:1 ~max_value:32767 in
  Alcotest.(check int) "32767 is int16" 2 (Tables.I.bytes edge)

let test_tri_bytes () =
  (* side = 4: rows hold 5+4+3+2+1 = 15 cells *)
  let t = Tables.Tri.create ~side:4 in
  Alcotest.(check int) "Tri bytes = 8*cells" 120 (Tables.Tri.bytes t);
  let it = Tables.Itri.create ~side:4 ~max_value:100 in
  Alcotest.(check int) "Itri int16 bytes = 2*cells" 30 (Tables.Itri.bytes it);
  let it32 = Tables.Itri.create ~side:4 ~max_value:100_000 in
  Alcotest.(check int) "Itri int32 bytes = 4*cells" 60 (Tables.Itri.bytes it32)

(* The cores' [bytes] must equal the sum of their declared buffers:
   these are the exact formulas the builds allocate with, restated. *)

let params = Fault.Params.paper ~lambda:0.01 ~c:5.0 ~d:0.0

let test_dp_bytes () =
  let dp = Core.Dp.build ~params ~quantum:1.0 ~horizon:50.0 () in
  let cols = Core.Dp.horizon_quanta dp + 1 in
  let rows = Core.Dp.kmax dp + 1 in
  (* e0 + e1 (Float64) + ib0 + ib1 + argm1 (all int16 at this size) +
     the bestk0 row of native ints *)
  let expect = (2 * 8 * rows * cols) + (3 * 2 * rows * cols) + (8 * cols) in
  Alcotest.(check int) "Dp.bytes matches its buffers" expect (Core.Dp.bytes dp)

let test_optimal_bytes () =
  let opt = Core.Optimal.build ~params ~quantum:1.0 ~horizon:50.0 () in
  let cols = Core.Optimal.horizon_quanta opt + 1 in
  Alcotest.(check int) "Optimal.bytes = 4 float rows" (8 * 4 * cols)
    (Core.Optimal.bytes opt)

(* Prefix views borrow their parent's buffer, so the byte accounting
   must charge them 0 — a cache holding a table and its views must pay
   for the buffer exactly once. Exact arithmetic, same as above. *)

let test_view_bytes () =
  let f = Tables.F.create ~rows:4 ~cols:6 in
  let fv = Tables.F.view f ~rows:2 ~cols:3 in
  Alcotest.(check bool) "F view flagged" true (Tables.F.is_view fv);
  Alcotest.(check bool) "F owner not flagged" false (Tables.F.is_view f);
  Alcotest.(check int) "F view bytes = 0" 0 (Tables.F.bytes fv);
  Alcotest.(check int) "F view words = 0" 0 (Tables.F.words fv);
  Alcotest.(check int) "F owner still charged" 192 (Tables.F.bytes f);
  (* The view indexes through the parent's stride: cell (r, c) of the
     view is cell (r, c) of the parent. *)
  Tables.F.set f 1 2 42.0;
  Alcotest.(check (float 0.0)) "view reads parent cell" 42.0
    (Tables.F.get fv 1 2);
  Alcotest.(check int) "view keeps parent stride" 6 (Tables.F.stride fv);
  (* Views compose, still charging nothing. *)
  let fvv = Tables.F.view fv ~rows:2 ~cols:2 in
  Alcotest.(check int) "view of view bytes = 0" 0 (Tables.F.bytes fvv);
  let i = Tables.I.create ~rows:4 ~cols:6 ~max_value:100 in
  let iv = Tables.I.view i ~rows:2 ~cols:3 in
  Alcotest.(check bool) "I view flagged" true (Tables.I.is_view iv);
  Alcotest.(check int) "I view bytes = 0" 0 (Tables.I.bytes iv);
  Alcotest.(check int) "I owner still charged" 48 (Tables.I.bytes i);
  Tables.I.set i 1 2 7;
  Alcotest.(check int) "I view reads parent cell" 7 (Tables.I.get iv 1 2);
  (* Shape validation: a view cannot outgrow its parent. *)
  (match Tables.F.view fv ~rows:3 ~cols:3 with
  | (_ : Tables.F.t) -> Alcotest.fail "oversized view accepted"
  | exception Invalid_argument _ -> ())

let test_dp_view_bytes () =
  let dp = Core.Dp.build ~params ~quantum:1.0 ~horizon:50.0 () in
  let view = Core.Dp.prefix_view dp ~horizon:30.0 in
  (* tstar' = 30 at u = 1: the view's only private storage is its
     recomputed best-k row of 31 native ints. No double-charge of the
     parent's buffers. *)
  Alcotest.(check bool) "flagged as view" true (Core.Dp.is_view view);
  Alcotest.(check int) "Dp view bytes = 8 * (T'/u + 1)" (8 * 31)
    (Core.Dp.bytes view);
  (* Parent accounting is untouched by the view's existence. *)
  let cols = Core.Dp.horizon_quanta dp + 1 in
  let rows = Core.Dp.kmax dp + 1 in
  let expect = (2 * 8 * rows * cols) + (3 * 2 * rows * cols) + (8 * cols) in
  Alcotest.(check int) "parent bytes unchanged" expect (Core.Dp.bytes dp)

let test_renewal_bytes () =
  let dist = Fault.Trace.Exponential { rate = 0.01 } in
  let t = Core.Dp_renewal.build ~params ~dist ~quantum:1.0 ~horizon:30.0 () in
  let tstar = Core.Dp_renewal.horizon_quanta t in
  let cells = (tstar + 1) * (tstar + 2) / 2 in
  let expect = (8 * cells) + (2 * cells) + (2 * 8 * (tstar + 1)) in
  Alcotest.(check int) "Dp_renewal.bytes matches its buffers" expect
    (Core.Dp_renewal.bytes t)

let () =
  Alcotest.run "tables"
    [
      ( "bytes",
        [
          Alcotest.test_case "F" `Quick test_f_bytes;
          Alcotest.test_case "I width selection" `Quick
            test_i_bytes_width_selection;
          Alcotest.test_case "Tri/Itri" `Quick test_tri_bytes;
          Alcotest.test_case "Dp" `Quick test_dp_bytes;
          Alcotest.test_case "Optimal" `Quick test_optimal_bytes;
          Alcotest.test_case "F/I views" `Quick test_view_bytes;
          Alcotest.test_case "Dp prefix view" `Quick test_dp_view_bytes;
          Alcotest.test_case "Dp_renewal" `Quick test_renewal_bytes;
        ] );
    ]
