(* Tests for Sim.Engine: exact outcomes on hand-crafted failure traces,
   downtime/exposure accounting, the stochastic-checkpoint mode, event
   recording and invariants under random traces. *)

module P = Sim.Policy
module E = Sim.Engine
module T = Fault.Trace

let close ?(eps = 1e-9) = Alcotest.(check (float eps))

let params = Fault.Params.make ~lambda:0.001 ~c:10.0 ~r:8.0 ~d:5.0
let quiet_trace () = T.of_iats [| 1.0e9 |]

let run ?record ?ckpt_sampler ~policy ~horizon trace =
  E.run ?record ?ckpt_sampler ~params ~horizon ~policy trace

let test_no_failure_single () =
  let outcome = run ~policy:(P.single_final ~params) ~horizon:100.0 (quiet_trace ()) in
  close "saved all but C" 90.0 outcome.E.work_saved;
  Alcotest.(check int) "one checkpoint" 1 outcome.E.checkpoints;
  Alcotest.(check int) "no failure" 0 outcome.E.failures;
  Alcotest.(check int) "one plan" 1 outcome.E.replans

let test_no_failure_periodic () =
  let policy = P.equal_segments ~params ~count:4 in
  let outcome = run ~policy ~horizon:100.0 (quiet_trace ()) in
  close "saved all but 4C" 60.0 outcome.E.work_saved;
  Alcotest.(check int) "four checkpoints" 4 outcome.E.checkpoints

let test_failure_before_first_ckpt_then_recover () =
  (* Horizon 100, single final checkpoint at 100. Failure at exposed 50:
     everything lost; downtime 5, replan at tleft = 45, new checkpoint
     completes at 45 (including recovery 8): saved 45 - 8 - 10 = 27. *)
  let trace = T.of_iats [| 50.0; 1.0e9 |] in
  let outcome = run ~policy:(P.single_final ~params) ~horizon:100.0 trace in
  close "saved after recovery" 27.0 outcome.E.work_saved;
  Alcotest.(check int) "one failure" 1 outcome.E.failures;
  Alcotest.(check int) "two plans" 2 outcome.E.replans

let test_failure_too_late_to_recover () =
  (* Failure at 95: tleft after downtime = 0 < R + C: nothing saved. *)
  let trace = T.of_iats [| 95.0; 1.0e9 |] in
  let outcome = run ~policy:(P.single_final ~params) ~horizon:100.0 trace in
  close "nothing saved" 0.0 outcome.E.work_saved;
  Alcotest.(check int) "one failure" 1 outcome.E.failures

let test_committed_work_survives_failure () =
  (* Two equal segments over 100: checkpoints at 50 and 100. Failure at
     exposed 70 loses only the second segment; replanning at
     tleft = 100 - 70 - 5 = 25 allows one more checkpoint at 25:
     25 - 8 - 10 = 7 more work. Total = (50-10) + 7 = 47. *)
  let trace = T.of_iats [| 70.0; 1.0e9 |] in
  let policy = P.equal_segments ~params ~count:2 in
  let outcome = run ~policy ~horizon:100.0 trace in
  close "first segment plus recovered tail" 47.0 outcome.E.work_saved;
  Alcotest.(check int) "two checkpoints" 2 outcome.E.checkpoints;
  Alcotest.(check int) "one failure" 1 outcome.E.failures

let test_downtime_not_exposed () =
  (* Failures at exposed times 50 and 60. After the first failure the
     clock of the second keeps running only during exposed time, so the
     second failure strikes 10 exposed units into the recovery attempt,
     i.e. at wall 50 + 5 (downtime) + 10 = 65. With single_final, replan
     after second failure: tleft = 100 - 65 - 5 = 30 -> save 30-8-10=12. *)
  let trace = T.of_iats [| 50.0; 10.0; 1.0e9 |] in
  let outcome =
    run ~record:true ~policy:(P.single_final ~params) ~horizon:100.0 trace
  in
  Alcotest.(check int) "two failures" 2 outcome.E.failures;
  close "final work" 12.0 outcome.E.work_saved;
  (* check the wall time of the second failure from the event log *)
  let failure_times =
    List.filter_map
      (function E.Failure { at; _ } -> Some at | _ -> None)
      outcome.E.events
  in
  Alcotest.(check (list (float 1e-9))) "failure wall times" [ 50.0; 65.0 ]
    failure_times

let test_multiple_failures_give_up () =
  (* Failures hammer the execution every 3 exposed units: R + C = 18
     never fits between failures... but the engine must terminate and
     save nothing. *)
  let trace = T.of_iats (Array.make 200 3.0) in
  let outcome = run ~policy:(P.single_final ~params) ~horizon:100.0 trace in
  close "nothing saved" 0.0 outcome.E.work_saved;
  Alcotest.(check bool) "several failures" true (outcome.E.failures > 3)

let test_events_chronological () =
  let trace = T.of_iats [| 70.0; 1.0e9 |] in
  let policy = P.equal_segments ~params ~count:2 in
  let outcome = run ~record:true ~policy ~horizon:100.0 trace in
  let times =
    List.map
      (function
        | E.Segment_saved { finish; _ } -> finish
        | E.Failure { at; _ } -> at
        | E.Gave_up { at } -> at
        | E.Platform_change { at; _ } -> at
        | E.Prediction { at; _ } -> at)
      outcome.E.events
  in
  let sorted = List.sort compare times in
  Alcotest.(check (list (float 1e-9))) "events in order" sorted times;
  (* and the lost time at the failure is relative to the last commit *)
  (match
     List.find_opt (function E.Failure _ -> true | _ -> false) outcome.E.events
   with
  | Some (E.Failure { lost; _ }) -> close "lost since last commit" 20.0 lost
  | _ -> Alcotest.fail "no failure event")

let test_no_events_without_record () =
  let outcome = run ~policy:(P.single_final ~params) ~horizon:100.0 (quiet_trace ()) in
  Alcotest.(check int) "no events" 0 (List.length outcome.E.events)

let test_stochastic_checkpoint_shifts () =
  (* Deterministic sampler making every checkpoint 5 units longer: the
     work saved per segment is unchanged, but the completion shifts.
     Equal(2) on 100: planned completions 50 and 100; actual durations 15
     mean the second completion would be 110 > 100: the second segment is
     lost. Saved = first segment work = 50 - 10 = 40. *)
  let sampler () = 15.0 in
  let policy = P.equal_segments ~params ~count:2 in
  let outcome =
    run ~ckpt_sampler:sampler ~policy ~horizon:100.0 (quiet_trace ())
  in
  close "only first segment saved" 40.0 outcome.E.work_saved;
  Alcotest.(check int) "one checkpoint" 1 outcome.E.checkpoints

let test_stochastic_checkpoint_shorter () =
  (* Faster checkpoints do not change committed work (the plan is already
     fixed), but everything still completes. *)
  let sampler () = 5.0 in
  let policy = P.equal_segments ~params ~count:2 in
  let outcome =
    run ~ckpt_sampler:sampler ~policy ~horizon:100.0 (quiet_trace ())
  in
  close "both segments saved" 80.0 outcome.E.work_saved;
  Alcotest.(check int) "two checkpoints" 2 outcome.E.checkpoints

let test_late_failure_downtime_clamped () =
  (* A stochastic checkpoint 30 units over nominal pushes the wall clock
     to 130 for a segment whose failure exposure ends at 130; a failure
     at exposed 120 therefore strikes with wall = 120, past the horizon
     of 100. The downtime share of the breakdown used to pick up
     min(D, horizon - wall) = -20; it must clamp to zero. *)
  let sampler () = params.Fault.Params.c +. 30.0 in
  let trace = T.of_iats [| 120.0; 1.0e9 |] in
  let outcome =
    run ~ckpt_sampler:sampler ~policy:(P.single_final ~params) ~horizon:100.0
      trace
  in
  Alcotest.(check int) "one failure" 1 outcome.E.failures;
  Alcotest.(check bool) "downtime share is nonnegative" true
    (outcome.E.breakdown.E.down >= 0.0);
  close "downtime share is empty" 0.0 outcome.E.breakdown.E.down;
  Alcotest.(check bool) "unused share is nonnegative" true
    (outcome.E.breakdown.E.unused >= 0.0)

let test_proportion_metric () =
  let outcome = run ~policy:(P.single_final ~params) ~horizon:110.0 (quiet_trace ()) in
  close "proportion 1" 1.0 (E.proportion_of_work ~params ~horizon:110.0 outcome);
  Alcotest.check_raises "horizon <= c"
    (Invalid_argument "Engine.proportion_of_work: horizon must exceed C")
    (fun () -> ignore (E.proportion_of_work ~params ~horizon:5.0 outcome))

let test_malformed_policy_rejected () =
  let bad = P.make ~name:"bad" (fun ~tleft ~recovering:_ -> [ tleft +. 50.0 ]) in
  match run ~policy:bad ~horizon:100.0 (quiet_trace ()) with
  | _ -> Alcotest.fail "malformed plan accepted"
  | exception Invalid_argument _ -> ()

(* Platform events (malleable platforms) *)

let breakdown_sum (b : E.breakdown) =
  b.E.working +. b.E.checkpointing +. b.E.recovering +. b.E.down +. b.E.lost
  +. b.E.unused

let test_platform_event_interrupts_plan () =
  (* single_final on 100 plans one checkpoint completing at 100; losing
     8 of 16 nodes at wall 40 interrupts it. The static policy has no
     adapt hook, so the engine re-queries the same plan closure: the
     abandoned span [0, 40] lands in unused, the new plan saves
     60 - C = 50. *)
  let platform =
    {
      E.initial = 16;
      events = [ T.Node_lost { at = 40.0; survivors = 8 } ];
    }
  in
  let outcome =
    E.run ~record:true ~platform ~params ~horizon:100.0
      ~policy:(P.single_final ~params) (quiet_trace ())
  in
  close "work saved after the interrupt" 50.0 outcome.E.work_saved;
  Alcotest.(check int) "one platform re-plan" 1 outcome.E.replans_platform;
  Alcotest.(check int) "two plans total" 2 outcome.E.replans;
  close "abandoned span is unused" 40.0 outcome.E.breakdown.E.unused;
  close "breakdown sums to horizon" 100.0 (breakdown_sum outcome.E.breakdown);
  match
    List.find_opt
      (function E.Platform_change _ -> true | _ -> false)
      outcome.E.events
  with
  | Some (E.Platform_change { at; survivors }) ->
      close "event date" 40.0 at;
      Alcotest.(check int) "survivors" 8 survivors
  | _ -> Alcotest.fail "no Platform_change event recorded"

let test_platform_event_degrades_adaptive_policy () =
  (* An adaptive policy's hook must receive the params degraded with
     the scale_platform convention: λ · survivors / initial. *)
  let seen = ref [] in
  let rec adaptive params =
    P.set_adapt (P.single_final ~params) (fun params' ->
        seen := params'.Fault.Params.lambda :: !seen;
        adaptive params')
  in
  let platform =
    {
      E.initial = 16;
      events =
        [
          T.Node_lost { at = 30.0; survivors = 8 };
          T.Node_joined { at = 60.0; survivors = 12 };
        ];
    }
  in
  let outcome =
    E.run ~platform ~params ~horizon:100.0 ~policy:(adaptive params)
      (quiet_trace ())
  in
  Alcotest.(check int) "two platform re-plans" 2 outcome.E.replans_platform;
  Alcotest.(check (list (float 0.0))) "degraded rates, in order"
    [ 0.001 *. 8.0 /. 16.0; 0.001 *. 12.0 /. 16.0 ]
    (List.rev !seen)

let test_platform_empty_events_bit_identical () =
  let trace () = T.of_iats [| 50.0; 1.0e9 |] in
  let baseline =
    E.run ~params ~horizon:100.0 ~policy:(P.single_final ~params) (trace ())
  in
  let with_platform =
    E.run
      ~platform:{ E.initial = 16; events = [] }
      ~params ~horizon:100.0 ~policy:(P.single_final ~params) (trace ())
  in
  Alcotest.(check bool) "outcomes bit-identical" true
    (baseline = with_platform);
  Alcotest.(check int) "no platform re-plan" 0 with_platform.E.replans_platform

let test_platform_event_past_horizon_ignored () =
  let trace () = T.of_iats [| 50.0; 1.0e9 |] in
  let baseline =
    E.run ~params ~horizon:100.0 ~policy:(P.single_final ~params) (trace ())
  in
  let with_platform =
    E.run
      ~platform:
        { E.initial = 16; events = [ T.Node_lost { at = 150.0; survivors = 8 } ] }
      ~params ~horizon:100.0 ~policy:(P.single_final ~params) (trace ())
  in
  Alcotest.(check bool) "outcome unchanged" true (baseline = with_platform);
  Alcotest.(check int) "event never processed" 0
    with_platform.E.replans_platform

let test_platform_event_during_downtime_deferred () =
  (* Failure at wall 50, downtime until 55; the event at 52 must take
     effect at the post-downtime re-plan, not interrupt the downtime.
     The plan and its accounting match the plain recover-after-failure
     case (the policy is static), with one platform re-plan counted. *)
  let trace = T.of_iats [| 50.0; 1.0e9 |] in
  let outcome =
    E.run
      ~platform:
        { E.initial = 16; events = [ T.Node_lost { at = 52.0; survivors = 8 } ] }
      ~params ~horizon:100.0 ~policy:(P.single_final ~params) trace
  in
  close "saved as in the failure-only case" 27.0 outcome.E.work_saved;
  Alcotest.(check int) "event processed after the downtime" 1
    outcome.E.replans_platform;
  close "breakdown sums to horizon" 100.0 (breakdown_sum outcome.E.breakdown)

(* Predictions (fault-prediction extension) *)

let accept_all = P.set_on_prediction (P.single_final ~params) (fun ~tleft:_ ~since_commit:_ ~window:_ -> true)

let pred ?(window = 20.0) ?(true_positive = false) at =
  { Fault.Predictor.at; window; true_positive }

let test_prediction_proactive_banks_work () =
  (* Quiet trace, horizon 100, single final checkpoint at 100 (work 90).
     A false alarm at exposed 40 triggers a proactive checkpoint: 40
     units banked, 10 spent checkpointing, re-plan saves 50 - 10 = 40
     more. The proactive commit costs exactly one extra C. *)
  let outcome =
    E.run ~record:true ~predictions:[ pred 40.0 ] ~params ~horizon:100.0
      ~policy:accept_all (quiet_trace ())
  in
  close "banked plus re-planned" 80.0 outcome.E.work_saved;
  Alcotest.(check int) "two checkpoints" 2 outcome.E.checkpoints;
  Alcotest.(check int) "one proactive" 1 outcome.E.proactive_checkpoints;
  Alcotest.(check int) "one false alarm" 1 outcome.E.predictions_false;
  Alcotest.(check int) "no true positive" 0 outcome.E.predictions_true;
  Alcotest.(check int) "re-planned after the commit" 2 outcome.E.replans;
  close "working share" 80.0 outcome.E.breakdown.E.working;
  close "checkpointing share" 20.0 outcome.E.breakdown.E.checkpointing;
  close "breakdown sums to horizon" 100.0 (breakdown_sum outcome.E.breakdown);
  (match outcome.E.events with
  | E.Prediction { at; true_positive } :: E.Segment_saved { work; finish; _ } :: _ ->
      close "fired at 40" 40.0 at;
      Alcotest.(check bool) "false alarm" false true_positive;
      close "banked 40" 40.0 work;
      close "committed at 50" 50.0 finish
  | _ -> Alcotest.fail "expected Prediction then Segment_saved")

let test_prediction_averts_failure () =
  (* Failure at exposed 60, announced at 45 (window 15, true positive).
     Unpredicted single-final loses everything at 60 and salvages
     35 - R - C = 17. Predicted: bank 45 at the firing date, lose only
     the 5 units since that commit, then the same 17-unit tail. *)
  let trace () = T.of_iats [| 60.0; 1.0e9 |] in
  let baseline =
    E.run ~params ~horizon:100.0 ~policy:(P.single_final ~params) (trace ())
  in
  close "unpredicted salvage" 17.0 baseline.E.work_saved;
  let outcome =
    E.run
      ~predictions:[ pred ~window:15.0 ~true_positive:true 45.0 ]
      ~params ~horizon:100.0 ~policy:accept_all (trace ())
  in
  close "banked before the fault" 62.0 outcome.E.work_saved;
  Alcotest.(check int) "one true positive" 1 outcome.E.predictions_true;
  Alcotest.(check int) "one proactive" 1 outcome.E.proactive_checkpoints;
  Alcotest.(check int) "still one failure" 1 outcome.E.failures;
  close "only the post-commit span is lost" 5.0 outcome.E.breakdown.E.lost;
  close "breakdown sums to horizon" 100.0 (breakdown_sum outcome.E.breakdown)

let test_prediction_failure_during_proactive_ckpt () =
  (* Announced too late: the proactive checkpoint starting at 55 needs
     C = 10 but the fault lands at 60. Everything since the last commit
     is lost, exactly as in the unpredicted run, and the incomplete
     proactive checkpoint counts nowhere. *)
  let trace = T.of_iats [| 60.0; 1.0e9 |] in
  let outcome =
    E.run
      ~predictions:[ pred ~window:5.0 ~true_positive:true 55.0 ]
      ~params ~horizon:100.0 ~policy:accept_all trace
  in
  close "same salvage as unpredicted" 17.0 outcome.E.work_saved;
  Alcotest.(check int) "true positive still counted" 1 outcome.E.predictions_true;
  Alcotest.(check int) "no proactive checkpoint completed" 0
    outcome.E.proactive_checkpoints;
  Alcotest.(check int) "one checkpoint (the tail)" 1 outcome.E.checkpoints;
  close "whole span since start lost" 60.0 outcome.E.breakdown.E.lost;
  close "breakdown sums to horizon" 100.0 (breakdown_sum outcome.E.breakdown)

let test_prediction_ignored_is_free () =
  (* A policy without the hook must replay the unpredicted run to the
     last bit on timing, work and breakdown; only the prediction
     counters (and recorded events) register the fired stream. *)
  let trace () = T.of_iats [| 60.0; 1.0e9 |] in
  let baseline =
    E.run ~params ~horizon:100.0 ~policy:(P.single_final ~params) (trace ())
  in
  let ignored =
    E.run
      ~predictions:[ pred ~true_positive:true 20.0; pred 40.0 ]
      ~params ~horizon:100.0 ~policy:(P.single_final ~params) (trace ())
  in
  Alcotest.(check bool) "work bit-identical" true
    (Float.equal baseline.E.work_saved ignored.E.work_saved);
  Alcotest.(check bool) "breakdown bit-identical" true
    (baseline.E.breakdown = ignored.E.breakdown);
  Alcotest.(check int) "checkpoints unchanged" baseline.E.checkpoints
    ignored.E.checkpoints;
  Alcotest.(check int) "replans unchanged" baseline.E.replans ignored.E.replans;
  Alcotest.(check int) "no proactive checkpoint" 0 ignored.E.proactive_checkpoints;
  Alcotest.(check int) "fired true positive counted" 1 ignored.E.predictions_true;
  Alcotest.(check int) "fired false alarm counted" 1 ignored.E.predictions_false

let test_prediction_none_and_empty_bit_identical () =
  let trace () = T.of_iats [| 60.0; 1.0e9 |] in
  let baseline =
    E.run ~params ~horizon:100.0 ~policy:(P.single_final ~params) (trace ())
  in
  let empty =
    E.run ~predictions:[] ~params ~horizon:100.0
      ~policy:(P.single_final ~params) (trace ())
  in
  Alcotest.(check bool) "outcomes structurally equal" true (baseline = empty);
  (* An empty stream is also free for a hooked policy. *)
  let hooked =
    E.run ~predictions:[] ~params ~horizon:100.0 ~policy:accept_all (trace ())
  in
  Alcotest.(check bool) "hooked policy, empty stream" true (baseline = hooked)

let test_prediction_proactive_c () =
  (* A cheap proactive checkpoint (Cp = 2 < C) banks the same work for
     less: 40 banked, 2 spent, re-plan saves 58 - 10 = 48. *)
  let outcome =
    E.run ~predictions:[ pred 40.0 ] ~proactive_c:2.0 ~params ~horizon:100.0
      ~policy:accept_all (quiet_trace ())
  in
  close "cheaper commit" 88.0 outcome.E.work_saved;
  close "checkpointing share" 12.0 outcome.E.breakdown.E.checkpointing;
  close "breakdown sums to horizon" 100.0 (breakdown_sum outcome.E.breakdown);
  Alcotest.check_raises "Cp > C rejected"
    (Invalid_argument "Engine.run: proactive_c must be finite in [0, C]")
    (fun () ->
      ignore
        (E.run ~predictions:[] ~proactive_c:20.0 ~params ~horizon:100.0
           ~policy:accept_all (quiet_trace ())))

let test_prediction_window_hook_decides () =
  (* proactive-window-style hook: accept only tight windows. A wide
     window is ignored at zero cost; a narrow one is taken. *)
  let selective w0 =
    P.set_on_prediction (P.single_final ~params)
      (fun ~tleft:_ ~since_commit:_ ~window -> window <= w0)
  in
  let wide =
    E.run ~predictions:[ pred ~window:50.0 40.0 ] ~params ~horizon:100.0
      ~policy:(selective 30.0) (quiet_trace ())
  in
  close "wide window ignored" 90.0 wide.E.work_saved;
  Alcotest.(check int) "no proactive" 0 wide.E.proactive_checkpoints;
  let narrow =
    E.run ~predictions:[ pred ~window:20.0 40.0 ] ~params ~horizon:100.0
      ~policy:(selective 30.0) (quiet_trace ())
  in
  close "narrow window taken" 80.0 narrow.E.work_saved;
  Alcotest.(check int) "one proactive" 1 narrow.E.proactive_checkpoints

(* Invariants under random traces and policies. *)

let qcheck_tests =
  let gen =
    QCheck.Gen.(
      let* seed = int_bound 1_000_000 in
      let* horizon = float_range 20.0 2000.0 in
      let* count = int_range 1 8 in
      return (seed, horizon, count))
  in
  let arb =
    QCheck.make gen ~print:(fun (s, h, k) ->
        Printf.sprintf "seed=%d horizon=%g count=%d" s h k)
  in
  let outcome_of (seed, horizon, count) policy =
    let trace =
      T.create
        ~dist:(T.Exponential { rate = 0.002 })
        ~seed:(Int64.of_int seed)
    in
    E.run ~params ~horizon ~policy:(policy count) trace
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"work saved within bounds" ~count:1000 arb
         (fun ((_, horizon, _) as case) ->
           let outcome =
             outcome_of case (fun count -> P.equal_segments ~params ~count)
           in
           outcome.E.work_saved >= 0.0
           && outcome.E.work_saved
              <= P.max_work ~params ~tleft:horizon ~recovering:false +. 1e-6));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"periodic policy also within bounds" ~count:500
         arb
         (fun ((_, horizon, _) as case) ->
           let outcome =
             outcome_of case (fun count ->
                 P.periodic ~params ~period:(10.0 *. float_of_int count))
           in
           outcome.E.work_saved >= 0.0
           && outcome.E.work_saved
              <= P.max_work ~params ~tleft:horizon ~recovering:false +. 1e-6));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"same trace, same outcome (replay)" ~count:300
         arb
         (fun ((seed, horizon, count) as _case) ->
           let trace () =
             T.create
               ~dist:(T.Exponential { rate = 0.002 })
               ~seed:(Int64.of_int seed)
           in
           let policy = P.equal_segments ~params ~count in
           let o1 = E.run ~params ~horizon ~policy (trace ()) in
           let o2 = E.run ~params ~horizon ~policy (trace ()) in
           o1.E.work_saved = o2.E.work_saved
           && o1.E.failures = o2.E.failures));
    (let gen =
       QCheck.Gen.(
         let* seed = int_bound 1_000_000 in
         let* horizon = float_range 20.0 2000.0 in
         let* count = int_range 1 8 in
         let* n_events = int_bound 5 in
         let* dates =
           list_repeat n_events (float_range 0.0 (1.2 *. horizon))
         in
         let* survivors = list_repeat n_events (int_range 1 20) in
         let* adaptive = bool in
         let events =
           List.map2
             (fun at survivors -> T.Node_lost { at; survivors })
             (List.sort compare dates)
             survivors
         in
         return (seed, horizon, count, events, adaptive))
     in
     let arb =
       QCheck.make gen ~print:(fun (s, h, k, evs, a) ->
           Printf.sprintf "seed=%d horizon=%g count=%d events=[%s] adaptive=%b"
             s h k
             (String.concat "; "
                (List.map
                   (fun e ->
                     Printf.sprintf "%g->%d" (T.event_at e)
                       (T.event_survivors e))
                   evs))
             a)
     in
     QCheck_alcotest.to_alcotest
       (QCheck.Test.make
          ~name:"breakdown sums to horizon under platform events" ~count:500
          arb
          (fun (seed, horizon, count, events, adaptive) ->
            let trace =
              T.create
                ~dist:(T.Exponential { rate = 0.002 })
                ~seed:(Int64.of_int seed)
            in
            let rec adaptive_policy params =
              P.set_adapt
                (P.equal_segments ~params ~count)
                (fun params' -> adaptive_policy params')
            in
            let policy =
              if adaptive then adaptive_policy params
              else P.equal_segments ~params ~count
            in
            let outcome =
              E.run
                ~platform:{ E.initial = 16; events }
                ~params ~horizon ~policy trace
            in
            let b = outcome.E.breakdown in
            Float.abs (breakdown_sum b -. horizon) <= 1e-6 *. horizon
            && b.E.working >= 0.0 && b.E.checkpointing >= 0.0
            && b.E.recovering >= 0.0 && b.E.down >= 0.0 && b.E.lost >= 0.0
            && b.E.unused >= 0.0)));
    (let gen =
       QCheck.Gen.(
         let* seed = int_bound 1_000_000 in
         let* horizon = float_range 20.0 2000.0 in
         let* count = int_range 1 8 in
         let* n_preds = int_bound 6 in
         let* dates =
           list_repeat n_preds (float_range 0.0 (1.2 *. horizon))
         in
         let* windows = list_repeat n_preds (float_range 0.0 50.0) in
         let* tps = list_repeat n_preds bool in
         let* hooked = bool in
         let* cp = float_range 0.0 params.Fault.Params.c in
         let preds =
           List.map2
             (fun (at, window) true_positive ->
               { Fault.Predictor.at; window; true_positive })
             (List.combine (List.sort compare dates) windows)
             tps
         in
         return (seed, horizon, count, preds, hooked, cp))
     in
     let arb =
       QCheck.make gen ~print:(fun (s, h, k, preds, hooked, cp) ->
           Printf.sprintf
             "seed=%d horizon=%g count=%d preds=[%s] hooked=%b cp=%g" s h k
             (String.concat "; "
                (List.map
                   (fun e ->
                     Printf.sprintf "%g(w=%g,%b)" e.Fault.Predictor.at
                       e.Fault.Predictor.window e.Fault.Predictor.true_positive)
                   preds))
             hooked cp)
     in
     QCheck_alcotest.to_alcotest
       (QCheck.Test.make
          ~name:"breakdown sums to horizon under random prediction schedules"
          ~count:500 arb
          (fun (seed, horizon, count, preds, hooked, cp) ->
            let trace =
              T.create
                ~dist:(T.Exponential { rate = 0.002 })
                ~seed:(Int64.of_int seed)
            in
            let base = P.equal_segments ~params ~count in
            let policy =
              if hooked then
                P.set_on_prediction base
                  (fun ~tleft:_ ~since_commit:_ ~window -> window <= 25.0)
              else base
            in
            let outcome =
              E.run ~predictions:preds ~proactive_c:cp ~params ~horizon
                ~policy trace
            in
            let b = outcome.E.breakdown in
            Float.abs (breakdown_sum b -. horizon) <= 1e-6 *. horizon
            && b.E.working >= 0.0 && b.E.checkpointing >= 0.0
            && b.E.recovering >= 0.0 && b.E.down >= 0.0 && b.E.lost >= 0.0
            && b.E.unused >= 0.0
            && outcome.E.proactive_checkpoints <= outcome.E.checkpoints
            && outcome.E.predictions_true + outcome.E.predictions_false
               <= List.length preds)));
  ]

let () =
  Alcotest.run "engine"
    [
      ( "failure-free",
        [
          Alcotest.test_case "single checkpoint" `Quick test_no_failure_single;
          Alcotest.test_case "equal segments" `Quick test_no_failure_periodic;
        ] );
      ( "failures",
        [
          Alcotest.test_case "recover after losing everything" `Quick
            test_failure_before_first_ckpt_then_recover;
          Alcotest.test_case "failure too late to recover" `Quick
            test_failure_too_late_to_recover;
          Alcotest.test_case "committed work survives" `Quick
            test_committed_work_survives_failure;
          Alcotest.test_case "downtime is not exposed" `Quick
            test_downtime_not_exposed;
          Alcotest.test_case "give up under hammering" `Quick
            test_multiple_failures_give_up;
        ] );
      ( "events",
        [
          Alcotest.test_case "chronological" `Quick test_events_chronological;
          Alcotest.test_case "off by default" `Quick test_no_events_without_record;
        ] );
      ( "stochastic checkpoints",
        [
          Alcotest.test_case "overrun loses the tail" `Quick
            test_stochastic_checkpoint_shifts;
          Alcotest.test_case "late failure clamps downtime" `Quick
            test_late_failure_downtime_clamped;
          Alcotest.test_case "shorter checkpoints keep the plan" `Quick
            test_stochastic_checkpoint_shorter;
        ] );
      ( "platform events",
        [
          Alcotest.test_case "event interrupts the plan" `Quick
            test_platform_event_interrupts_plan;
          Alcotest.test_case "adaptive policy gets degraded params" `Quick
            test_platform_event_degrades_adaptive_policy;
          Alcotest.test_case "empty events are bit-identical" `Quick
            test_platform_empty_events_bit_identical;
          Alcotest.test_case "event past horizon ignored" `Quick
            test_platform_event_past_horizon_ignored;
          Alcotest.test_case "event during downtime deferred" `Quick
            test_platform_event_during_downtime_deferred;
        ] );
      ( "predictions",
        [
          Alcotest.test_case "proactive checkpoint banks work" `Quick
            test_prediction_proactive_banks_work;
          Alcotest.test_case "true positive averts a failure" `Quick
            test_prediction_averts_failure;
          Alcotest.test_case "failure during the proactive checkpoint" `Quick
            test_prediction_failure_during_proactive_ckpt;
          Alcotest.test_case "ignored predictions are free" `Quick
            test_prediction_ignored_is_free;
          Alcotest.test_case "absent and empty streams bit-identical" `Quick
            test_prediction_none_and_empty_bit_identical;
          Alcotest.test_case "cheap proactive checkpoints" `Quick
            test_prediction_proactive_c;
          Alcotest.test_case "window hook decides" `Quick
            test_prediction_window_hook_decides;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "proportion of work" `Quick test_proportion_metric;
          Alcotest.test_case "malformed policies rejected" `Quick
            test_malformed_policy_rejected;
        ] );
      ("properties", qcheck_tests);
    ]
