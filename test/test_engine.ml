(* Tests for Sim.Engine: exact outcomes on hand-crafted failure traces,
   downtime/exposure accounting, the stochastic-checkpoint mode, event
   recording and invariants under random traces. *)

module P = Sim.Policy
module E = Sim.Engine
module T = Fault.Trace

let close ?(eps = 1e-9) = Alcotest.(check (float eps))

let params = Fault.Params.make ~lambda:0.001 ~c:10.0 ~r:8.0 ~d:5.0
let quiet_trace () = T.of_iats [| 1.0e9 |]

let run ?record ?ckpt_sampler ~policy ~horizon trace =
  E.run ?record ?ckpt_sampler ~params ~horizon ~policy trace

let test_no_failure_single () =
  let outcome = run ~policy:(P.single_final ~params) ~horizon:100.0 (quiet_trace ()) in
  close "saved all but C" 90.0 outcome.E.work_saved;
  Alcotest.(check int) "one checkpoint" 1 outcome.E.checkpoints;
  Alcotest.(check int) "no failure" 0 outcome.E.failures;
  Alcotest.(check int) "one plan" 1 outcome.E.replans

let test_no_failure_periodic () =
  let policy = P.equal_segments ~params ~count:4 in
  let outcome = run ~policy ~horizon:100.0 (quiet_trace ()) in
  close "saved all but 4C" 60.0 outcome.E.work_saved;
  Alcotest.(check int) "four checkpoints" 4 outcome.E.checkpoints

let test_failure_before_first_ckpt_then_recover () =
  (* Horizon 100, single final checkpoint at 100. Failure at exposed 50:
     everything lost; downtime 5, replan at tleft = 45, new checkpoint
     completes at 45 (including recovery 8): saved 45 - 8 - 10 = 27. *)
  let trace = T.of_iats [| 50.0; 1.0e9 |] in
  let outcome = run ~policy:(P.single_final ~params) ~horizon:100.0 trace in
  close "saved after recovery" 27.0 outcome.E.work_saved;
  Alcotest.(check int) "one failure" 1 outcome.E.failures;
  Alcotest.(check int) "two plans" 2 outcome.E.replans

let test_failure_too_late_to_recover () =
  (* Failure at 95: tleft after downtime = 0 < R + C: nothing saved. *)
  let trace = T.of_iats [| 95.0; 1.0e9 |] in
  let outcome = run ~policy:(P.single_final ~params) ~horizon:100.0 trace in
  close "nothing saved" 0.0 outcome.E.work_saved;
  Alcotest.(check int) "one failure" 1 outcome.E.failures

let test_committed_work_survives_failure () =
  (* Two equal segments over 100: checkpoints at 50 and 100. Failure at
     exposed 70 loses only the second segment; replanning at
     tleft = 100 - 70 - 5 = 25 allows one more checkpoint at 25:
     25 - 8 - 10 = 7 more work. Total = (50-10) + 7 = 47. *)
  let trace = T.of_iats [| 70.0; 1.0e9 |] in
  let policy = P.equal_segments ~params ~count:2 in
  let outcome = run ~policy ~horizon:100.0 trace in
  close "first segment plus recovered tail" 47.0 outcome.E.work_saved;
  Alcotest.(check int) "two checkpoints" 2 outcome.E.checkpoints;
  Alcotest.(check int) "one failure" 1 outcome.E.failures

let test_downtime_not_exposed () =
  (* Failures at exposed times 50 and 60. After the first failure the
     clock of the second keeps running only during exposed time, so the
     second failure strikes 10 exposed units into the recovery attempt,
     i.e. at wall 50 + 5 (downtime) + 10 = 65. With single_final, replan
     after second failure: tleft = 100 - 65 - 5 = 30 -> save 30-8-10=12. *)
  let trace = T.of_iats [| 50.0; 10.0; 1.0e9 |] in
  let outcome =
    run ~record:true ~policy:(P.single_final ~params) ~horizon:100.0 trace
  in
  Alcotest.(check int) "two failures" 2 outcome.E.failures;
  close "final work" 12.0 outcome.E.work_saved;
  (* check the wall time of the second failure from the event log *)
  let failure_times =
    List.filter_map
      (function E.Failure { at; _ } -> Some at | _ -> None)
      outcome.E.events
  in
  Alcotest.(check (list (float 1e-9))) "failure wall times" [ 50.0; 65.0 ]
    failure_times

let test_multiple_failures_give_up () =
  (* Failures hammer the execution every 3 exposed units: R + C = 18
     never fits between failures... but the engine must terminate and
     save nothing. *)
  let trace = T.of_iats (Array.make 200 3.0) in
  let outcome = run ~policy:(P.single_final ~params) ~horizon:100.0 trace in
  close "nothing saved" 0.0 outcome.E.work_saved;
  Alcotest.(check bool) "several failures" true (outcome.E.failures > 3)

let test_events_chronological () =
  let trace = T.of_iats [| 70.0; 1.0e9 |] in
  let policy = P.equal_segments ~params ~count:2 in
  let outcome = run ~record:true ~policy ~horizon:100.0 trace in
  let times =
    List.map
      (function
        | E.Segment_saved { finish; _ } -> finish
        | E.Failure { at; _ } -> at
        | E.Gave_up { at } -> at)
      outcome.E.events
  in
  let sorted = List.sort compare times in
  Alcotest.(check (list (float 1e-9))) "events in order" sorted times;
  (* and the lost time at the failure is relative to the last commit *)
  (match
     List.find_opt (function E.Failure _ -> true | _ -> false) outcome.E.events
   with
  | Some (E.Failure { lost; _ }) -> close "lost since last commit" 20.0 lost
  | _ -> Alcotest.fail "no failure event")

let test_no_events_without_record () =
  let outcome = run ~policy:(P.single_final ~params) ~horizon:100.0 (quiet_trace ()) in
  Alcotest.(check int) "no events" 0 (List.length outcome.E.events)

let test_stochastic_checkpoint_shifts () =
  (* Deterministic sampler making every checkpoint 5 units longer: the
     work saved per segment is unchanged, but the completion shifts.
     Equal(2) on 100: planned completions 50 and 100; actual durations 15
     mean the second completion would be 110 > 100: the second segment is
     lost. Saved = first segment work = 50 - 10 = 40. *)
  let sampler () = 15.0 in
  let policy = P.equal_segments ~params ~count:2 in
  let outcome =
    run ~ckpt_sampler:sampler ~policy ~horizon:100.0 (quiet_trace ())
  in
  close "only first segment saved" 40.0 outcome.E.work_saved;
  Alcotest.(check int) "one checkpoint" 1 outcome.E.checkpoints

let test_stochastic_checkpoint_shorter () =
  (* Faster checkpoints do not change committed work (the plan is already
     fixed), but everything still completes. *)
  let sampler () = 5.0 in
  let policy = P.equal_segments ~params ~count:2 in
  let outcome =
    run ~ckpt_sampler:sampler ~policy ~horizon:100.0 (quiet_trace ())
  in
  close "both segments saved" 80.0 outcome.E.work_saved;
  Alcotest.(check int) "two checkpoints" 2 outcome.E.checkpoints

let test_late_failure_downtime_clamped () =
  (* A stochastic checkpoint 30 units over nominal pushes the wall clock
     to 130 for a segment whose failure exposure ends at 130; a failure
     at exposed 120 therefore strikes with wall = 120, past the horizon
     of 100. The downtime share of the breakdown used to pick up
     min(D, horizon - wall) = -20; it must clamp to zero. *)
  let sampler () = params.Fault.Params.c +. 30.0 in
  let trace = T.of_iats [| 120.0; 1.0e9 |] in
  let outcome =
    run ~ckpt_sampler:sampler ~policy:(P.single_final ~params) ~horizon:100.0
      trace
  in
  Alcotest.(check int) "one failure" 1 outcome.E.failures;
  Alcotest.(check bool) "downtime share is nonnegative" true
    (outcome.E.breakdown.E.down >= 0.0);
  close "downtime share is empty" 0.0 outcome.E.breakdown.E.down;
  Alcotest.(check bool) "unused share is nonnegative" true
    (outcome.E.breakdown.E.unused >= 0.0)

let test_proportion_metric () =
  let outcome = run ~policy:(P.single_final ~params) ~horizon:110.0 (quiet_trace ()) in
  close "proportion 1" 1.0 (E.proportion_of_work ~params ~horizon:110.0 outcome);
  Alcotest.check_raises "horizon <= c"
    (Invalid_argument "Engine.proportion_of_work: horizon must exceed C")
    (fun () -> ignore (E.proportion_of_work ~params ~horizon:5.0 outcome))

let test_malformed_policy_rejected () =
  let bad = P.make ~name:"bad" (fun ~tleft ~recovering:_ -> [ tleft +. 50.0 ]) in
  match run ~policy:bad ~horizon:100.0 (quiet_trace ()) with
  | _ -> Alcotest.fail "malformed plan accepted"
  | exception Invalid_argument _ -> ()

(* Invariants under random traces and policies. *)

let qcheck_tests =
  let gen =
    QCheck.Gen.(
      let* seed = int_bound 1_000_000 in
      let* horizon = float_range 20.0 2000.0 in
      let* count = int_range 1 8 in
      return (seed, horizon, count))
  in
  let arb =
    QCheck.make gen ~print:(fun (s, h, k) ->
        Printf.sprintf "seed=%d horizon=%g count=%d" s h k)
  in
  let outcome_of (seed, horizon, count) policy =
    let trace =
      T.create
        ~dist:(T.Exponential { rate = 0.002 })
        ~seed:(Int64.of_int seed)
    in
    E.run ~params ~horizon ~policy:(policy count) trace
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"work saved within bounds" ~count:1000 arb
         (fun ((_, horizon, _) as case) ->
           let outcome =
             outcome_of case (fun count -> P.equal_segments ~params ~count)
           in
           outcome.E.work_saved >= 0.0
           && outcome.E.work_saved
              <= P.max_work ~params ~tleft:horizon ~recovering:false +. 1e-6));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"periodic policy also within bounds" ~count:500
         arb
         (fun ((_, horizon, _) as case) ->
           let outcome =
             outcome_of case (fun count ->
                 P.periodic ~params ~period:(10.0 *. float_of_int count))
           in
           outcome.E.work_saved >= 0.0
           && outcome.E.work_saved
              <= P.max_work ~params ~tleft:horizon ~recovering:false +. 1e-6));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"same trace, same outcome (replay)" ~count:300
         arb
         (fun ((seed, horizon, count) as _case) ->
           let trace () =
             T.create
               ~dist:(T.Exponential { rate = 0.002 })
               ~seed:(Int64.of_int seed)
           in
           let policy = P.equal_segments ~params ~count in
           let o1 = E.run ~params ~horizon ~policy (trace ()) in
           let o2 = E.run ~params ~horizon ~policy (trace ()) in
           o1.E.work_saved = o2.E.work_saved
           && o1.E.failures = o2.E.failures));
  ]

let () =
  Alcotest.run "engine"
    [
      ( "failure-free",
        [
          Alcotest.test_case "single checkpoint" `Quick test_no_failure_single;
          Alcotest.test_case "equal segments" `Quick test_no_failure_periodic;
        ] );
      ( "failures",
        [
          Alcotest.test_case "recover after losing everything" `Quick
            test_failure_before_first_ckpt_then_recover;
          Alcotest.test_case "failure too late to recover" `Quick
            test_failure_too_late_to_recover;
          Alcotest.test_case "committed work survives" `Quick
            test_committed_work_survives_failure;
          Alcotest.test_case "downtime is not exposed" `Quick
            test_downtime_not_exposed;
          Alcotest.test_case "give up under hammering" `Quick
            test_multiple_failures_give_up;
        ] );
      ( "events",
        [
          Alcotest.test_case "chronological" `Quick test_events_chronological;
          Alcotest.test_case "off by default" `Quick test_no_events_without_record;
        ] );
      ( "stochastic checkpoints",
        [
          Alcotest.test_case "overrun loses the tail" `Quick
            test_stochastic_checkpoint_shifts;
          Alcotest.test_case "late failure clamps downtime" `Quick
            test_late_failure_downtime_clamped;
          Alcotest.test_case "shorter checkpoints keep the plan" `Quick
            test_stochastic_checkpoint_shorter;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "proportion of work" `Quick test_proportion_metric;
          Alcotest.test_case "malformed policies rejected" `Quick
            test_malformed_policy_rejected;
        ] );
      ("properties", qcheck_tests);
    ]
