End-to-end drill for deadline-aware supervised execution. Everything
below is deterministic: chaos hang decisions are a pure function of
(seed, key, attempt), and a zero deadline expires before any work
starts, so the partial/resume sequence is exactly reproducible.

Baseline: a small fig3 sweep on the in-process domain backend.

  $ ../../bin/main.exe figure fig3 --traces 30 --t-step 300 --t-max 900 \
  >   --quiet --no-plot --csv baseline.csv > /dev/null

Watchdog drill: the same sweep under process isolation with ~20% of
grid-point attempts hanging forever. The supervisor SIGKILLs each hung
worker after the 1s task timeout and re-dispatches with a fresh chaos
attempt number, so the sweep completes — and because results cross the
pipe via Marshal (bit-exact floats), the curves are identical to the
in-process baseline.

  $ ../../bin/main.exe figure fig3 --traces 30 --t-step 300 --t-max 900 \
  >   --quiet --no-plot --isolate --task-timeout 1 --retry 4 \
  >   --chaos-hang 0.2 --chaos-seed 5 --csv hang.csv > /dev/null
  $ cmp baseline.csv hang.csv

Deadline drill: a campaign whose reservation budget is already exhausted
ends gracefully — exit code 3 (partial), figure skipped, no crash — and
leaves the journal directory ready for a resume.

  $ ../../bin/main.exe campaign --figures fig3 --traces 30 --t-step 300 \
  >   --t-max 900 --deadline 0 --journal j --out out --quiet > /dev/null
  fixedlen: partial campaign — 0 grid point(s) missed the deadline, figure(s) not started: fig3 (completed points journaled; rerun with --resume to finish)
  [3]

Resuming the interrupted campaign (no deadline this time) completes the
grid and reproduces the uninterrupted run bit for bit.

  $ ../../bin/main.exe campaign --figures fig3 --traces 30 --t-step 300 \
  >   --t-max 900 --resume j --out out --quiet > /dev/null
  $ cmp baseline.csv out/fig3.csv

Hang injection without a watchdog is refused: a hung task in the
in-process domain pool could never be recovered.

  $ ../../bin/main.exe figure fig3 --traces 2 --chaos-hang 0.2
  fixedlen: --chaos-hang requires --task-timeout: a hung task can only be recovered by the process-isolation watchdog
  [2]
