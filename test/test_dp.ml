(* Tests for Core.Dp, the optimal dynamic program: consistency with the
   independent quantised policy evaluator, optimality against every other
   strategy, invariance under the kmax cap, and the executable policy. *)

module Dp = Core.Dp
module P = Fault.Params

let close ?(eps = 1e-9) = Alcotest.(check (float eps))

let params = P.paper ~lambda:0.002 ~c:10.0 ~d:5.0

let build ?kmax ?(params = params) ?(quantum = 1.0) ~horizon () =
  Dp.build ?kmax ~params ~quantum ~horizon ()

let test_zero_when_nothing_fits () =
  let dp = build ~horizon:100.0 () in
  close "below C" 0.0 (Dp.expected_work dp ~tleft:9.0);
  Alcotest.(check int) "no checkpoint" 0 (Dp.best_k dp ~n:9 ~delta:false);
  close "E(n,1,1) zero below R+C" 0.0
    (Dp.expected_work_q dp ~n:19 ~k:1 ~delta:true)

let test_upper_bound () =
  let dp = build ~horizon:500.0 () in
  for n = 1 to 500 do
    let v = Dp.best_expected_work_q dp ~n ~delta:false in
    let bound = Float.max 0.0 (float_of_int n -. params.P.c) in
    if v > bound +. 1e-9 then
      Alcotest.failf "E(%d) = %g exceeds bound %g" n v bound
  done

let test_monotone_in_n () =
  let dp = build ~horizon:500.0 () in
  let prev = ref 0.0 in
  for n = 1 to 500 do
    let v = Dp.best_expected_work_q dp ~n ~delta:false in
    if v < !prev -. 1e-9 then
      Alcotest.failf "optimal value decreased at n=%d: %g < %g" n v !prev;
    prev := v
  done

let test_delta_costs_recovery () =
  let dp = build ~horizon:400.0 () in
  for n = 50 to 400 do
    let v0 = Dp.best_expected_work_q dp ~n ~delta:false in
    let v1 = Dp.best_expected_work_q dp ~n ~delta:true in
    if v1 > v0 +. 1e-9 then
      Alcotest.failf "recovery start better at n=%d" n
  done

let test_matches_policy_evaluator () =
  (* The DP value and the independent quantised evaluator applied to the
     DP policy must agree essentially exactly: they discretise the same
     model. *)
  List.iter
    (fun (lambda, c, d, horizon) ->
      let params = P.paper ~lambda ~c ~d in
      let dp = Dp.build ~params ~quantum:1.0 ~horizon () in
      let v_dp = Dp.expected_work dp ~tleft:horizon in
      let v_eval =
        Core.Expected.policy_value ~params ~quantum:1.0 ~horizon
          ~policy:(Dp.policy dp)
      in
      close ~eps:1e-6
        (Printf.sprintf "λ=%g C=%g D=%g T=%g" lambda c d horizon)
        v_dp v_eval)
    [
      (0.002, 10.0, 5.0, 300.0);
      (0.001, 20.0, 0.0, 500.0);
      (0.01, 10.0, 0.0, 200.0);
      (0.01, 40.0, 5.0, 400.0);
    ]

let test_dominates_other_policies () =
  (* Optimality on the quantised model: no other (quantum-aligned)
     strategy may beat the DP value. *)
  let horizon = 500.0 in
  let dp = build ~horizon () in
  let v_dp = Dp.expected_work dp ~tleft:horizon in
  List.iter
    (fun (name, policy) ->
      let v =
        Core.Expected.policy_value ~params ~quantum:1.0 ~horizon ~policy
      in
      if v > v_dp +. 1e-6 then
        Alcotest.failf "%s achieves %g > DP %g" name v v_dp)
    [
      ("SingleFinal", Sim.Policy.single_final ~params);
      ("Equal(2)", Sim.Policy.equal_segments ~params ~count:2);
      ("Equal(3)", Sim.Policy.equal_segments ~params ~count:3);
      ("Equal(5)", Sim.Policy.equal_segments ~params ~count:5);
      ("YoungDaly", Core.Policies.young_daly ~params);
      ("NumericalOptimum", Core.Policies.numerical_optimum ~params ~horizon);
      ("FirstOrder", Core.Policies.first_order ~params ~horizon);
      ("Two(0.45)", Sim.Policy.two_checkpoints ~params ~alpha:0.45);
    ]

let test_k1_matches_exhaustive_search () =
  (* For k = 1 the DP reduces to choosing the single checkpoint position;
     compare with an explicit exhaustive computation of
     max_i [ P(i) (i - C) + sum_f p_f E(n - f - D, 1, 1) ] built
     independently (recursive, memoised). *)
  let lambda = 0.01 and c = 5.0 and d = 2.0 in
  let params = P.paper ~lambda ~c ~d in
  let horizon = 80.0 in
  let dp = Dp.build ~params ~quantum:1.0 ~horizon () in
  let cq = 5 and rq = 5 and dq = 2 in
  let psucc i = exp (-.lambda *. float_of_int i) in
  let p f = psucc (f - 1) -. psucc f in
  let memo1 = Array.make 81 nan in
  (* e1 n = optimal single-checkpoint value starting with recovery *)
  let rec e1 n =
    if n < 0 then 0.0
    else if not (Float.is_nan memo1.(n)) then memo1.(n)
    else begin
      let best = ref 0.0 in
      for i = rq + cq + 1 to n do
        let acc = ref (psucc i *. float_of_int (i - cq - rq)) in
        for f = 1 to i do
          acc := !acc +. (p f *. e1 (n - f - dq))
        done;
        if !acc > !best then best := !acc
      done;
      memo1.(n) <- !best;
      !best
    end
  in
  let e0 n =
    let best = ref 0.0 in
    for i = cq + 1 to n do
      let acc = ref (psucc i *. float_of_int (i - cq)) in
      for f = 1 to i do
        acc := !acc +. (p f *. e1 (n - f - dq))
      done;
      if !acc > !best then best := !acc
    done;
    !best
  in
  for n = 1 to 80 do
    close ~eps:1e-9
      (Printf.sprintf "E(%d, 1, 0)" n)
      (e0 n)
      (Dp.expected_work_q dp ~n ~k:1 ~delta:false);
    close ~eps:1e-9
      (Printf.sprintf "E(%d, 1, 1)" n)
      (e1 n)
      (Dp.expected_work_q dp ~n ~k:1 ~delta:true)
  done

let test_kmax_cap_invariant () =
  (* A generous cap must not change the optimum. *)
  let horizon = 400.0 in
  let full = build ~horizon () in
  let capped = build ~kmax:(Dp.suggested_kmax ~params ~horizon) ~horizon () in
  for n = 1 to 400 do
    close ~eps:1e-9
      (Printf.sprintf "n=%d" n)
      (Dp.best_expected_work_q full ~n ~delta:false)
      (Dp.best_expected_work_q capped ~n ~delta:false)
  done

let test_plans_are_valid () =
  let horizon = 600.0 in
  let dp = build ~horizon () in
  let policy = Dp.policy dp in
  List.iter
    (fun tleft ->
      let plan = policy.Sim.Policy.plan ~tleft ~recovering:false in
      Sim.Policy.validate_plan ~params ~tleft ~recovering:false plan)
    [ 600.0; 543.0; 200.0; 50.0; 11.0; 9.0 ]

let test_plan_unroll_consistent_with_tables () =
  let horizon = 500.0 in
  let dp = build ~horizon () in
  let n = 500 in
  let k = Dp.best_k dp ~n ~delta:false in
  let plan = Dp.plan_q dp ~n ~k ~delta:false in
  Alcotest.(check int) "plan has k checkpoints" k (List.length plan);
  (* completion times increasing, last within n *)
  let rec check prev = function
    | [] -> ()
    | q :: rest ->
        Alcotest.(check bool) "increasing" true (q > prev);
        Alcotest.(check bool) "within horizon" true (q <= n);
        check q rest
  in
  check 0 plan

let test_policy_statefulness_after_failure () =
  (* After a failure the DP policy must re-plan with at most the
     remaining number of checkpoints (Equation (8)): drive the policy
     through the engine on a crafted trace and check every re-plan is
     still valid and the outcome matches a fresh replay. *)
  let horizon = 500.0 in
  let dp = build ~horizon () in
  let trace () = Fault.Trace.of_iats [| 260.0; 100.0; 1.0e9 |] in
  let o1 =
    Sim.Engine.run ~params ~horizon ~policy:(Dp.policy dp) (trace ())
  in
  let o2 =
    Sim.Engine.run ~params ~horizon ~policy:(Dp.policy dp) (trace ())
  in
  close "reproducible across fresh policies" o1.Sim.Engine.work_saved
    o2.Sim.Engine.work_saved;
  Alcotest.(check bool) "some work saved" true (o1.Sim.Engine.work_saved > 0.0);
  Alcotest.(check int) "two failures" 2 o1.Sim.Engine.failures

let test_policy_reusable_across_traces () =
  (* The same policy value is reused for a whole batch by Runner: state
     must reset at each fresh reservation (first call has
     recovering=false). *)
  let horizon = 300.0 in
  let dp = build ~horizon () in
  let policy = Dp.policy dp in
  let t1 = Fault.Trace.of_iats [| 100.0; 1.0e9 |] in
  let t2 = Fault.Trace.of_iats [| 100.0; 1.0e9 |] in
  let o1 = Sim.Engine.run ~params ~horizon ~policy t1 in
  let o2 = Sim.Engine.run ~params ~horizon ~policy t2 in
  close "same trace, same result through shared policy"
    o1.Sim.Engine.work_saved o2.Sim.Engine.work_saved

let test_monte_carlo_agreement () =
  (* The simulated mean must approach the DP expectation (continuous
     failures vs quantised model: agreement within CI + small bias). *)
  let horizon = 400.0 in
  let dp = build ~horizon () in
  let traces =
    Fault.Trace.batch
      ~dist:(Fault.Trace.Exponential { rate = params.P.lambda })
      ~seed:123L ~n:50_000
  in
  let r =
    Sim.Runner.evaluate ~params ~horizon ~policy:(Dp.policy dp) traces
  in
  let mc = r.Sim.Runner.mean_work in
  let ci =
    r.Sim.Runner.proportion.Numerics.Stats.ci95_half_width
    *. (horizon -. params.P.c)
  in
  let v = Dp.expected_work dp ~tleft:horizon in
  Alcotest.(check bool)
    (Printf.sprintf "DP %.2f vs MC %.2f ± %.2f" v mc ci)
    true
    (abs_float (v -. mc) < ci +. 2.0)

let test_quantum_refinement () =
  (* A finer quantum can only help (richer strategy space), up to noise:
     E_opt(u=0.5) >= E_opt(u=2) - epsilon; and values converge. *)
  let horizon = 300.0 in
  let value quantum =
    let dp = build ~quantum ~horizon () in
    Dp.expected_work dp ~tleft:horizon
  in
  let coarse = value 2.0 and mid = value 1.0 and fine = value 0.5 in
  (* The strategy space is nested, but the failure discretisation also
     changes with u, so allow a small model tolerance. *)
  Alcotest.(check bool) "finer >= coarser (up to model tolerance)" true
    (fine >= mid -. 0.2 && mid >= coarse -. 0.2);
  Alcotest.(check bool) "values converge" true
    (abs_float (fine -. mid) <= abs_float (mid -. coarse) +. 0.5)

let test_last_checkpoint_can_end_early () =
  (* For failure-heavy settings the DP may place its last checkpoint
     strictly before the end (Section 4.2's insight); verify on an
     extreme configuration that the freedom exists and is exercised. *)
  let params = P.make ~lambda:0.5 ~c:4.0 ~r:4.0 ~d:0.0 in
  let dp = Dp.build ~params ~quantum:1.0 ~horizon:10.0 () in
  let n = 10 in
  let k = Dp.best_k dp ~n ~delta:false in
  Alcotest.(check bool) "uses one checkpoint" true (k >= 1);
  let plan = Dp.plan_q dp ~n ~k ~delta:false in
  let last = List.fold_left max 0 plan in
  Alcotest.(check bool)
    (Printf.sprintf "last checkpoint at %d < 10" last)
    true (last < n)

(* The pre-Bigarray table builder, kept verbatim as an executable
   specification: the flat-table core with the merged delta=0/delta=1
   inner loop must reproduce every cell of these boxed tables exactly
   (same additions in the same order, so equality is bitwise, not
   approximate). *)
module Reference = struct
  type t = {
    tstar : int;
    kmax : int;
    e0 : float array array;
    e1 : float array array;
    ib0 : int array array;
    ib1 : int array array;
    argm1 : int array array;
    bestk0 : int array;
  }

  let quanta_round x ~u = int_of_float (Float.round (x /. u))

  let build ?kmax ~params ~quantum ~horizon () =
    let open Fault.Params in
    let u = quantum in
    let tstar = int_of_float (floor ((horizon /. u) +. 1e-9)) in
    let cq = max 1 (quanta_round params.c ~u) in
    let rq = max 0 (quanta_round params.r ~u) in
    let dq = max 0 (quanta_round params.d ~u) in
    let kmax_exact = max 1 (tstar / cq) in
    let kmax =
      match kmax with None -> kmax_exact | Some k -> min k kmax_exact
    in
    let lam = params.lambda in
    let psucc =
      Array.init (tstar + 1) (fun i -> exp (-.lam *. float_of_int i *. u))
    in
    let p = Array.make (tstar + 1) 0.0 in
    for f = 1 to tstar do
      p.(f) <- psucc.(f - 1) -. psucc.(f)
    done;
    let mk_f () = Array.init (kmax + 1) (fun _ -> Array.make (tstar + 1) 0.0) in
    let mk_i () = Array.init (kmax + 1) (fun _ -> Array.make (tstar + 1) 0) in
    let e0 = mk_f () and e1 = mk_f () in
    let ib0 = mk_i () and ib1 = mk_i () in
    let argm1 = mk_i () in
    let bestv = Array.make (tstar + 1) 0.0 in
    let argv = Array.make (tstar + 1) 0 in
    for k = 1 to kmax do
      let e0k = e0.(k)
      and e1k = e1.(k)
      and ib0k = ib0.(k)
      and ib1k = ib1.(k) in
      let cont = if k >= 2 then e0.(k - 1) else [||] in
      for n = 1 to tstar do
        let solve ~delta =
          let base = if delta then rq else 0 in
          let ilo = base + cq + 1 in
          let ihi = if k >= 2 then n - ((k - 1) * cq) else n in
          if ihi < ilo then (0.0, 0)
          else begin
            let running = ref 0.0 in
            for f = 1 to ilo - 1 do
              let n' = n - f - dq in
              if n' >= 1 then running := !running +. (p.(f) *. bestv.(n'))
            done;
            let best = ref 0.0 and besti = ref 0 in
            for i = ilo to ihi do
              let n' = n - i - dq in
              if n' >= 1 then running := !running +. (p.(i) *. bestv.(n'));
              let continuation = if k >= 2 then cont.(n - i) else 0.0 in
              let work = float_of_int (i - cq - base) in
              let cand = (psucc.(i) *. (work +. continuation)) +. !running in
              if cand > !best then begin
                best := cand;
                besti := i
              end
            done;
            (!best, !besti)
          end
        in
        let v1, i1 = solve ~delta:true in
        e1k.(n) <- v1;
        ib1k.(n) <- i1;
        let v0, i0 = solve ~delta:false in
        e0k.(n) <- v0;
        ib0k.(n) <- i0;
        if v1 > bestv.(n) then begin
          bestv.(n) <- v1;
          argv.(n) <- k
        end
      done;
      Array.blit argv 0 argm1.(k) 0 (tstar + 1)
    done;
    let bestk0 = Array.make (tstar + 1) 0 in
    let beste0 = Array.make (tstar + 1) 0.0 in
    for k = 1 to kmax do
      for n = 1 to tstar do
        if e0.(k).(n) > beste0.(n) then begin
          beste0.(n) <- e0.(k).(n);
          bestk0.(n) <- k
        end
      done
    done;
    { tstar; kmax; e0; e1; ib0; ib1; argm1; bestk0 }
end

let test_flat_tables_match_reference () =
  List.iter
    (fun (lambda, c, d, quantum, horizon, kmax) ->
      let params = P.paper ~lambda ~c ~d in
      let label =
        Printf.sprintf "λ=%g C=%g D=%g u=%g T=%g" lambda c d quantum horizon
      in
      let dp = Dp.build ?kmax ~params ~quantum ~horizon () in
      let r = Reference.build ?kmax ~params ~quantum ~horizon () in
      Alcotest.(check int) (label ^ " kmax") r.Reference.kmax (Dp.kmax dp);
      Alcotest.(check int)
        (label ^ " tstar") r.Reference.tstar
        (Dp.horizon_quanta dp);
      for k = 1 to r.Reference.kmax do
        for n = 0 to r.Reference.tstar do
          let cell what want got =
            if not (Float.equal want got) then
              Alcotest.failf "%s: %s(%d, %d) = %h, reference %h" label what k n
                got want
          in
          cell "e0"
            (r.Reference.e0.(k).(n) *. quantum)
            (Dp.expected_work_q dp ~n ~k ~delta:false);
          cell "e1"
            (r.Reference.e1.(k).(n) *. quantum)
            (Dp.expected_work_q dp ~n ~k ~delta:true);
          let icell what want got =
            if want <> got then
              Alcotest.failf "%s: %s(%d, %d) = %d, reference %d" label what k n
                got want
          in
          icell "ib0"
            r.Reference.ib0.(k).(n)
            (Dp.first_checkpoint_q dp ~n ~k ~delta:false);
          icell "ib1"
            r.Reference.ib1.(k).(n)
            (Dp.first_checkpoint_q dp ~n ~k ~delta:true);
          icell "argm1" r.Reference.argm1.(k).(n) (Dp.arg_best_m dp ~n ~k)
        done
      done;
      for n = 0 to r.Reference.tstar do
        Alcotest.(check int)
          (Printf.sprintf "%s bestk0(%d)" label n)
          r.Reference.bestk0.(n)
          (Dp.best_k dp ~n ~delta:false)
      done)
    [
      (0.002, 10.0, 5.0, 1.0, 300.0, None);
      (0.01, 5.0, 2.0, 1.0, 150.0, None);
      (0.001, 20.0, 0.0, 2.0, 500.0, None);
      (0.005, 8.0, 3.0, 0.5, 120.0, None);
      (0.002, 10.0, 0.0, 1.0, 400.0, Some 7);
    ]

let test_suggested_kmax_zero_c () =
  (* C = 0 used to divide by zero in the exact bound T/C (and the
     Young/Daly stride, since W_YD vanishes with C). *)
  let params = P.make ~lambda:0.001 ~c:0.0 ~r:0.0 ~d:0.0 in
  let k = Dp.suggested_kmax ~params ~horizon:100.0 in
  Alcotest.(check bool) "finite and positive" true (k >= 1);
  Alcotest.(check int) "one checkpoint per time unit" 100 k;
  Alcotest.(check int) "tiny horizon still positive" 1
    (Dp.suggested_kmax ~params ~horizon:0.5)

let test_suggested_kmax_bounds () =
  let k = Dp.suggested_kmax ~params ~horizon:2000.0 in
  Alcotest.(check bool) "at least 1" true (k >= 1);
  Alcotest.(check bool) "no more than exact bound" true
    (k <= int_of_float (2000.0 /. params.P.c))

let test_build_validation () =
  (match build ~quantum:0.0 ~horizon:10.0 () with
  | _ -> Alcotest.fail "quantum 0 accepted"
  | exception Invalid_argument _ -> ());
  (match build ~horizon:0.5 () with
  | _ -> Alcotest.fail "sub-quantum horizon accepted"
  | exception Invalid_argument _ -> ());
  (match build ~kmax:0 ~horizon:100.0 () with
  | _ -> Alcotest.fail "kmax 0 accepted"
  | exception Invalid_argument _ -> ())

let qcheck_dominance =
  (* Random platforms: the DP optimum must dominate the heuristics on
     the quantised model at its own horizon. *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"DP dominates heuristics on random platforms"
       ~count:15
       (QCheck.make
          QCheck.Gen.(
            (* costs and horizon on the quantum grid, as in the paper:
               otherwise the DP solves a rounded (harsher) instance and
               cannot be compared with the continuous heuristics *)
            let* lambda = float_range 5e-4 0.03 in
            let* c = int_range 3 25 in
            let* d = int_range 0 6 in
            let* horizon = int_range 60 220 in
            return
              ( P.paper ~lambda ~c:(float_of_int c) ~d:(float_of_int d),
                float_of_int horizon ))
          ~print:(fun (p, h) -> Printf.sprintf "%s T=%g" (P.to_string p) h))
       (fun (params, horizon) ->
         let dp = Dp.build ~params ~quantum:1.0 ~horizon () in
         let v_dp = Dp.expected_work dp ~tleft:horizon in
         let check policy =
           Core.Expected.policy_value ~params ~quantum:1.0 ~horizon ~policy
           <= v_dp +. 1e-6
         in
         check (Core.Policies.young_daly ~params)
         && check (Core.Policies.numerical_optimum ~params ~horizon)
         && check (Sim.Policy.single_final ~params)))

(* Exact table equality through the public accessors: every float cell
   compared with Float.equal (bit-identity up to NaN canonicalisation,
   which the DP never produces), every index cell with (=). *)
let check_tables_identical ~label want got =
  if Dp.kmax want <> Dp.kmax got then
    Alcotest.failf "%s: kmax %d vs %d" label (Dp.kmax want) (Dp.kmax got);
  if Dp.horizon_quanta want <> Dp.horizon_quanta got then
    Alcotest.failf "%s: tstar %d vs %d" label
      (Dp.horizon_quanta want)
      (Dp.horizon_quanta got);
  for k = 1 to Dp.kmax want do
    for n = 0 to Dp.horizon_quanta want do
      let cell what a b =
        if not (Float.equal a b) then
          Alcotest.failf "%s: %s(%d, %d) = %h, want %h" label what k n b a
      in
      let icell what a b =
        if a <> b then
          Alcotest.failf "%s: %s(%d, %d) = %d, want %d" label what k n b a
      in
      cell "e0"
        (Dp.expected_work_q want ~n ~k ~delta:false)
        (Dp.expected_work_q got ~n ~k ~delta:false);
      cell "e1"
        (Dp.expected_work_q want ~n ~k ~delta:true)
        (Dp.expected_work_q got ~n ~k ~delta:true);
      icell "ib0"
        (Dp.first_checkpoint_q want ~n ~k ~delta:false)
        (Dp.first_checkpoint_q got ~n ~k ~delta:false);
      icell "ib1"
        (Dp.first_checkpoint_q want ~n ~k ~delta:true)
        (Dp.first_checkpoint_q got ~n ~k ~delta:true);
      icell "argm1" (Dp.arg_best_m want ~n ~k) (Dp.arg_best_m got ~n ~k)
    done
  done;
  for n = 0 to Dp.horizon_quanta want do
    if Dp.best_k want ~n ~delta:false <> Dp.best_k got ~n ~delta:false then
      Alcotest.failf "%s: bestk0(%d) = %d, want %d" label n
        (Dp.best_k got ~n ~delta:false)
        (Dp.best_k want ~n ~delta:false)
  done

let test_parallel_build_matches_serial () =
  List.iter
    (fun (lambda, c, d, quantum, horizon) ->
      let params = P.paper ~lambda ~c ~d in
      let serial = Dp.build ~params ~quantum ~horizon () in
      List.iter
        (fun jobs ->
          let par = Dp.build ~jobs ~params ~quantum ~horizon () in
          check_tables_identical
            ~label:
              (Printf.sprintf "λ=%g C=%g D=%g u=%g T=%g jobs=%d" lambda c d
                 quantum horizon jobs)
            serial par)
        [ 2; 3; 4 ])
    [
      (0.002, 10.0, 5.0, 1.0, 300.0);
      (0.01, 5.0, 2.0, 1.0, 150.0);
      (0.005, 8.0, 3.0, 0.5, 120.0);
    ]

let qcheck_parallel_bit_identical =
  (* The tentpole contract: ?jobs only reshapes the schedule, never the
     arithmetic. Every cell of a jobs in 1..4 build must be bit-identical
     to the serial build on random platforms. *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"parallel build bit-identical to serial" ~count:10
       (QCheck.make
          QCheck.Gen.(
            let* lambda = float_range 5e-4 0.03 in
            let* c = int_range 3 25 in
            let* r = int_range 0 4 in
            let* d = int_range 0 6 in
            let* horizon = int_range 60 220 in
            let* jobs = int_range 1 4 in
            return
              ( P.make ~lambda ~c:(float_of_int c) ~r:(float_of_int r)
                  ~d:(float_of_int d),
                float_of_int horizon,
                jobs ))
          ~print:(fun (p, h, jobs) ->
            Printf.sprintf "%s T=%g jobs=%d" (P.to_string p) h jobs))
       (fun (params, horizon, jobs) ->
         let serial = Dp.build ~params ~quantum:1.0 ~horizon () in
         let par = Dp.build ~jobs ~params ~quantum:1.0 ~horizon () in
         check_tables_identical ~label:"random parallel" serial par;
         true))

let qcheck_prefix_view_cell_identical =
  (* The incremental-reuse contract: the prefix view of a horizon-T
     table at T' <= T is cell-identical to a fresh T' build, both with
     the cache's suggested-kmax caps and with the default exact caps. *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"prefix view cell-identical to fresh build"
       ~count:10
       (QCheck.make
          QCheck.Gen.(
            let* lambda = float_range 5e-4 0.03 in
            let* c = int_range 3 25 in
            let* r = int_range 0 4 in
            let* d = int_range 0 6 in
            let* horizon = int_range 80 240 in
            let* horizon' = int_range 20 horizon in
            return
              ( P.make ~lambda ~c:(float_of_int c) ~r:(float_of_int r)
                  ~d:(float_of_int d),
                float_of_int horizon,
                float_of_int horizon' ))
          ~print:(fun (p, h, h') ->
            Printf.sprintf "%s T=%g T'=%g" (P.to_string p) h h'))
       (fun (params, horizon, horizon') ->
         (* Default caps. *)
         let parent = Dp.build ~params ~quantum:1.0 ~horizon () in
         let fresh = Dp.build ~params ~quantum:1.0 ~horizon:horizon' () in
         let view = Dp.prefix_view parent ~horizon:horizon' in
         Alcotest.(check bool) "view flag" true (Dp.is_view view);
         check_tables_identical ~label:"default kmax" fresh view;
         (* The caps the cache uses. *)
         let parent =
           Dp.build
             ~kmax:(Dp.suggested_kmax ~params ~horizon)
             ~params ~quantum:1.0 ~horizon ()
         in
         let kmax' = Dp.suggested_kmax ~params ~horizon:horizon' in
         let fresh =
           Dp.build ~kmax:kmax' ~params ~quantum:1.0 ~horizon:horizon' ()
         in
         let view = Dp.prefix_view ~kmax:kmax' parent ~horizon:horizon' in
         check_tables_identical ~label:"suggested kmax" fresh view;
         true))

let () =
  Alcotest.run "dp"
    [
      ( "table structure",
        [
          Alcotest.test_case "zero when nothing fits" `Quick
            test_zero_when_nothing_fits;
          Alcotest.test_case "upper bound" `Quick test_upper_bound;
          Alcotest.test_case "monotone in n" `Quick test_monotone_in_n;
          Alcotest.test_case "recovery start is never better" `Quick
            test_delta_costs_recovery;
          Alcotest.test_case "suggested kmax" `Quick test_suggested_kmax_bounds;
          Alcotest.test_case "suggested kmax with C = 0" `Quick
            test_suggested_kmax_zero_c;
          Alcotest.test_case "build validation" `Quick test_build_validation;
          Alcotest.test_case "flat tables match boxed reference" `Slow
            test_flat_tables_match_reference;
        ] );
      ( "optimality",
        [
          Alcotest.test_case "value = policy evaluator" `Quick
            test_matches_policy_evaluator;
          Alcotest.test_case "dominates all baselines" `Quick
            test_dominates_other_policies;
          Alcotest.test_case "k=1 exhaustive cross-check" `Quick
            test_k1_matches_exhaustive_search;
          Alcotest.test_case "kmax cap invariance" `Quick test_kmax_cap_invariant;
          Alcotest.test_case "quantum refinement" `Slow test_quantum_refinement;
        ] );
      ( "policy execution",
        [
          Alcotest.test_case "plans are valid" `Quick test_plans_are_valid;
          Alcotest.test_case "plan unroll" `Quick test_plan_unroll_consistent_with_tables;
          Alcotest.test_case "stateful re-planning" `Quick
            test_policy_statefulness_after_failure;
          Alcotest.test_case "reusable across traces" `Quick
            test_policy_reusable_across_traces;
          Alcotest.test_case "Monte-Carlo agreement" `Slow test_monte_carlo_agreement;
          Alcotest.test_case "early final checkpoint" `Quick
            test_last_checkpoint_can_end_early;
        ] );
      ( "properties",
        [
          qcheck_dominance;
          Alcotest.test_case "parallel matches serial (fixed cases)" `Quick
            test_parallel_build_matches_serial;
          qcheck_parallel_bit_identical;
          qcheck_prefix_view_cell_identical;
        ] );
    ]
