(* Tests for Numerics.Stats. *)

module S = Numerics.Stats

let close ?(eps = 1e-9) = Alcotest.(check (float eps))

let feed xs =
  let acc = S.acc_create () in
  Array.iter (S.acc_add acc) xs;
  acc

let test_empty () =
  let acc = S.acc_create () in
  Alcotest.(check int) "count" 0 (S.acc_count acc);
  Alcotest.(check bool) "mean nan" true (Float.is_nan (S.acc_mean acc))

let test_single () =
  let acc = feed [| 42.0 |] in
  close "mean" 42.0 (S.acc_mean acc);
  Alcotest.(check bool) "variance nan" true (Float.is_nan (S.acc_variance acc));
  close "min" 42.0 (S.acc_min acc);
  close "max" 42.0 (S.acc_max acc)

let test_known_moments () =
  let acc = feed [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  close "mean" 5.0 (S.acc_mean acc);
  (* sample variance with n-1: sum sq dev = 32, / 7 *)
  close "variance" (32.0 /. 7.0) (S.acc_variance acc);
  close "stddev" (sqrt (32.0 /. 7.0)) (S.acc_stddev acc)

let test_welford_stability () =
  (* Large offset: the naive sum-of-squares formula would lose all
     precision; Welford must not. *)
  let offset = 1e9 in
  let xs = Array.init 1000 (fun i -> offset +. float_of_int (i mod 10)) in
  let acc = feed xs in
  close ~eps:1e-6 "variance at large offset" (S.variance (Array.map (fun x -> x -. offset) xs))
    (S.acc_variance acc)

let test_merge_equals_sequential () =
  let xs = Array.init 100 (fun i -> sin (float_of_int i)) in
  let ys = Array.init 57 (fun i -> cos (float_of_int i) *. 3.0) in
  let merged = S.acc_merge (feed xs) (feed ys) in
  let all = feed (Array.append xs ys) in
  close ~eps:1e-12 "mean" (S.acc_mean all) (S.acc_mean merged);
  close ~eps:1e-10 "variance" (S.acc_variance all) (S.acc_variance merged);
  Alcotest.(check int) "count" (S.acc_count all) (S.acc_count merged);
  close "min" (S.acc_min all) (S.acc_min merged);
  close "max" (S.acc_max all) (S.acc_max merged)

let test_merge_with_empty () =
  let xs = feed [| 1.0; 2.0; 3.0 |] in
  let e = S.acc_create () in
  close "left empty" 2.0 (S.acc_mean (S.acc_merge e xs));
  close "right empty" 2.0 (S.acc_mean (S.acc_merge xs e))

let test_summary () =
  let s = S.of_array (Array.init 100 (fun i -> float_of_int i)) in
  Alcotest.(check int) "count" 100 s.S.count;
  close "mean" 49.5 s.S.mean;
  close "min" 0.0 s.S.min;
  close "max" 99.0 s.S.max;
  close ~eps:1e-9 "ci95" (1.96 *. s.S.stddev /. 10.0) s.S.ci95_half_width

let test_quantiles () =
  let xs = [| 3.0; 1.0; 4.0; 1.0; 5.0; 9.0; 2.0; 6.0 |] in
  close "q0 = min" 1.0 (S.quantile xs ~q:0.0);
  close "q1 = max" 9.0 (S.quantile xs ~q:1.0);
  close "median interpolates" 3.5 (S.median xs);
  (* xs must be untouched *)
  Alcotest.(check (float 0.0)) "input unmodified" 3.0 xs.(0)

let test_quantile_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.quantile: empty array")
    (fun () -> ignore (S.quantile [||] ~q:0.5));
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Stats.quantile: q outside [0, 1]") (fun () ->
      ignore (S.quantile [| 1.0 |] ~q:1.5))

let p2_of xs ~q =
  let p = S.P2.create ~q in
  Array.iter (S.P2.add p) xs;
  p

let test_p2_empty_and_small () =
  let p = S.P2.create ~q:0.5 in
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (S.P2.value p));
  (* Up to five samples the estimator is exact: it falls back to the
     sorted buffer with the same type-7 interpolation as S.quantile. *)
  let xs = [| 9.0; 1.0; 5.0; 3.0 |] in
  Array.iter (S.P2.add p) xs;
  Alcotest.(check int) "count" 4 (S.P2.count p);
  close "small-sample median exact" (S.median xs) (S.P2.value p);
  close "small-sample p95 exact" (S.quantile xs ~q:0.95)
    (S.P2.value (p2_of xs ~q:0.95))

let test_p2_uniform_accuracy () =
  (* Deterministic LCG stream of uniforms on [0, 1]: the true quantile
     of the distribution is q itself. *)
  let state = ref 123456789L in
  let next () =
    state := Int64.(add (mul !state 6364136223846793005L) 1442695040888963407L);
    Int64.(to_float (shift_right_logical !state 11)) /. 9007199254740992.0
  in
  let xs = Array.init 20_000 (fun _ -> next ()) in
  List.iter
    (fun q ->
      let est = S.P2.value (p2_of xs ~q) in
      let exact = S.quantile xs ~q in
      close ~eps:0.01 (Printf.sprintf "p2 ~ exact at q=%g" q) exact est)
    [ 0.05; 0.5; 0.95 ]

let test_p2_tracks_extremes () =
  let xs = Array.init 1000 (fun i -> float_of_int i) in
  let p0 = p2_of xs ~q:0.0 and p1 = p2_of xs ~q:1.0 in
  (* The centre marker at q=0 hugs the low order statistics but is not
     pinned to the exact minimum. *)
  close ~eps:5.0 "q=0 tracks min region" 0.0 (S.P2.value p0);
  close ~eps:5.0 "q=1 tracks max region" 999.0 (S.P2.value p1)

let test_p2_rejects_bad_q () =
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Stats.P2.create: q outside [0, 1]") (fun () ->
      ignore (S.P2.create ~q:1.5))

let qcheck_tests =
  let arr = QCheck.(array_of_size (Gen.int_range 2 200) (float_range (-100.0) 100.0)) in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"mean within [min, max]" ~count:500 arr (fun xs ->
           let s = S.of_array xs in
           s.S.mean >= s.S.min -. 1e-9 && s.S.mean <= s.S.max +. 1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"variance nonnegative" ~count:500 arr (fun xs ->
           S.variance xs >= -1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"quantile is monotone in q" ~count:500 arr
         (fun xs ->
           S.quantile xs ~q:0.25 <= S.quantile xs ~q:0.75 +. 1e-12));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"p2 estimate within [min, max]" ~count:300 arr
         (fun xs ->
           let s = S.of_array xs in
           let v = S.P2.value (p2_of xs ~q:0.5) in
           v >= s.S.min -. 1e-9 && v <= s.S.max +. 1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"merge is commutative" ~count:300
         QCheck.(pair arr arr)
         (fun (xs, ys) ->
           let m1 = S.acc_merge (feed xs) (feed ys) in
           let m2 = S.acc_merge (feed ys) (feed xs) in
           abs_float (S.acc_mean m1 -. S.acc_mean m2) < 1e-9
           && abs_float (S.acc_variance m1 -. S.acc_variance m2) < 1e-6));
  ]

let () =
  Alcotest.run "stats"
    [
      ( "accumulator",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "single" `Quick test_single;
          Alcotest.test_case "known moments" `Quick test_known_moments;
          Alcotest.test_case "numerical stability" `Quick test_welford_stability;
        ] );
      ( "merge",
        [
          Alcotest.test_case "equals sequential" `Quick test_merge_equals_sequential;
          Alcotest.test_case "with empty" `Quick test_merge_with_empty;
        ] );
      ( "summaries",
        [
          Alcotest.test_case "summary fields" `Quick test_summary;
          Alcotest.test_case "quantiles" `Quick test_quantiles;
          Alcotest.test_case "quantile errors" `Quick test_quantile_errors;
        ] );
      ( "p2",
        [
          Alcotest.test_case "empty and small samples" `Quick
            test_p2_empty_and_small;
          Alcotest.test_case "uniform accuracy" `Quick test_p2_uniform_accuracy;
          Alcotest.test_case "tracks extremes" `Quick test_p2_tracks_extremes;
          Alcotest.test_case "rejects bad q" `Quick test_p2_rejects_bad_q;
        ] );
      ("properties", qcheck_tests);
    ]
