Serve drill: the daemon's failure disciplines end to end — crash
recovery from the request journal, overload shedding at admission,
per-request budgets, LRU eviction surfaced through stats, and a
graceful SIGTERM drain.

Crash drill. The daemon journals every query and is armed to SIGKILL
itself during the 4th journal append (--chaos-crash-at serve-journal:3
= crash during the write that follows 3 complete appends).

  $ ../../bin/main.exe serve --socket s.sock --journal j.log \
  >   --chaos-crash-at serve-journal:3 --quiet &
  $ DPID=$!
  $ ../../bin/main.exe query --socket s.sock --ping --retry 8 --retry-base 0.1
  pong

Three queries are answered (and fsync'd into the journal one by one):

  $ ../../bin/main.exe query --socket s.sock --lambda 0.001 -c 20 -t 500 \
  >   | tee q1
  next=245 k=2 work=395.864
  $ ../../bin/main.exe query --socket s.sock --lambda 0.001 -c 20 -t 500 \
  >   --left 120 --recovering --kleft 2 | tee q2
  next=120 k=1 work=73.8321
  $ ../../bin/main.exe query --socket s.sock --lambda 0.002 -c 40 -t 400 > q3

The 4th query trips the crash point mid-append: the daemon dies with
SIGKILL (137) under the client, which reports the dropped connection.

  $ ../../bin/main.exe query --socket s.sock --lambda 0.005 -c 10 -t 300 \
  >   > /dev/null 2>&1
  [1]
  $ wait $DPID
  [137]

Restart on the same journal (chaos disarmed, cache now LRU-bounded to
2 tables). The torn 4th record is truncated; the 3 fsync'd requests
are recovered and reported.

  $ ../../bin/main.exe serve --socket s.sock --journal j.log \
  >   --cache-tables 2 > serve2.log &
  $ DPID=$!
  $ ../../bin/main.exe query --socket s.sock --ping --retry 8 --retry-base 0.1
  pong
  $ grep -o "recovered=3" serve2.log
  recovered=3

Every pre-crash query replays bit-identically — the %.17g wire floats
hash to the same cache keys, the rebuilt tables are deterministic.

  $ ../../bin/main.exe query --socket s.sock --lambda 0.001 -c 20 -t 500 > r1
  $ cmp q1 r1
  $ ../../bin/main.exe query --socket s.sock --lambda 0.001 -c 20 -t 500 \
  >   --left 120 --recovering --kleft 2 > r2
  $ cmp q2 r2
  $ ../../bin/main.exe query --socket s.sock --lambda 0.002 -c 40 -t 400 > r3
  $ cmp q3 r3

And the query the crash swallowed is simply asked again:

  $ ../../bin/main.exe query --socket s.sock --lambda 0.005 -c 10 -t 300 \
  >   > /dev/null

The replay needed 3 distinct tables under a 2-table bound: the re-plan
query hit the fresh-plan table (same platform and horizon), the third
build evicted the least recently used one.

  $ ../../bin/main.exe query --socket s.sock --stats \
  >   | grep -o "builds=3 hits=1 evictions=1 tables=2"
  builds=3 hits=1 evictions=1 tables=2

SIGTERM drains gracefully: in-flight work finishes, the journal is
closed durably, the exit is clean and the summary accounts every
connection this daemon saw.

  $ kill -TERM $DPID
  $ wait $DPID
  $ grep -o "drained accepted=6 shed=0 requests=6 answered=6" serve2.log
  drained accepted=6 shed=0 requests=6 answered=6

Overload drill. A queue capacity of 0 sheds every connection with a
typed reply (exit 4) — also through the client's decorrelated-jitter
retry path, which re-asks and is shed each time.

  $ ../../bin/main.exe serve --socket o.sock --queue 0 --quiet &
  $ OPID=$!
  $ while [ ! -S o.sock ]; do sleep 0.05; done
  $ ../../bin/main.exe query --socket o.sock --ping --retry 3 \
  >   --retry-base 0.01 --retry-decorrelated
  overloaded
  [4]
  $ kill -TERM $OPID
  $ wait $OPID

Timeout drill. A per-request budget of 0.05 s against a handler that
sleeps 0.3 s per query: the reply is a typed timeout (exit 5), not a
stall. Pings skip the query path, so readiness still answers fast.

  $ ../../bin/main.exe serve --socket t.sock --slow 0.3 \
  >   --request-budget 0.05 --quiet &
  $ TPID=$!
  $ ../../bin/main.exe query --socket t.sock --ping --retry 8 --retry-base 0.1
  pong
  $ ../../bin/main.exe query --socket t.sock --lambda 0.001 -c 20 -t 500
  timeout
  [5]
  $ kill -TERM $TPID
  $ wait $TPID

Rotation drill. A small --journal-rotate bound seals the live journal
into immutable numbered segments (published atomically: temp file,
fsync, rename) instead of letting it grow without bound.

  $ ../../bin/main.exe serve --socket r.sock --journal r.log \
  >   --journal-rotate 150 --quiet &
  $ RPID=$!
  $ ../../bin/main.exe query --socket r.sock --ping --retry 8 --retry-base 0.1
  pong
  $ ../../bin/main.exe query --socket r.sock --lambda 0.001 -c 20 -t 500 \
  >   > /dev/null
  $ ../../bin/main.exe query --socket r.sock --lambda 0.002 -c 40 -t 400 \
  >   > /dev/null
  $ ../../bin/main.exe query --socket r.sock --lambda 0.005 -c 10 -t 300 \
  >   > /dev/null
  $ kill -TERM $RPID
  $ wait $RPID

The second append crossed the bound, so the first two requests were
sealed into segment 1 and the third landed in the fresh live file.

  $ grep -c "^[0-9]* query" r.log.1
  2
  $ grep -c "^[0-9]* query" r.log
  1

Restart recovery scans segments oldest-first, then the live tail: all
three requests come back, across the rotation boundary.

  $ ../../bin/main.exe serve --socket r.sock --journal r.log \
  >   --journal-rotate 150 > rot.log &
  $ RPID=$!
  $ ../../bin/main.exe query --socket r.sock --ping --retry 8 --retry-base 0.1
  pong
  $ grep -o "recovered=3 segments=1" rot.log
  recovered=3 segments=1
  $ kill -TERM $RPID
  $ wait $RPID

Network drill. The same daemon also listens on TCP (port 0 binds an
ephemeral port, reported on startup), negotiates binary framing per
connection, batches worker rounds, and pins per-client platforms in
server-side sessions — with the same crash discipline, because the
journal stays canonical text whatever the client spoke.

  $ ../../bin/main.exe serve --socket n.sock --listen 127.0.0.1:0 \
  >   --journal n.log --batch 4 --chaos-crash-at serve-journal:3 \
  >   > net.log &
  $ NPID=$!
  $ PORT=$(sed -n 's/.*listening on tcp 127.0.0.1:\([0-9]*\).*/\1/p' net.log)
  $ while [ -z "$PORT" ]; do sleep 0.05; \
  >   PORT=$(sed -n 's/.*listening on tcp 127.0.0.1:\([0-9]*\).*/\1/p' net.log); done

A binary TCP client opens a session pinning its platform server-side:

  $ ../../bin/main.exe query --socket 127.0.0.1:$PORT --binary \
  >   --session-open --lambda 0.001 -c 20 -t 500
  sid=1

Session queries carry only the per-instant deltas, and answer exactly
what the equivalent full queries answer (compare the crash drill):

  $ ../../bin/main.exe query --socket 127.0.0.1:$PORT --binary \
  >   --session 1 --left 500 | tee nq1
  next=245 k=2 work=395.864
  $ ../../bin/main.exe query --socket 127.0.0.1:$PORT --binary \
  >   --session 1 --left 120 --recovering --kleft 2 | tee nq2
  next=120 k=1 work=73.8321

A full binary query on another platform shares the same wire:

  $ ../../bin/main.exe query --socket 127.0.0.1:$PORT --binary \
  >   --lambda 0.002 -c 40 -t 400 > nq3

The 4th journal append carries a live session query and trips the
crash point: SIGKILL mid-append, under an active session.

  $ ../../bin/main.exe query --socket 127.0.0.1:$PORT --binary \
  >   --session 1 --left 300 > /dev/null 2>&1
  [1]
  $ wait $NPID
  [137]

The journal never saw a binary byte or a sid: every record — the three
fsync'd appends and the torn tail of the fourth — is a canonical-text
query line, session queries re-encoded at resolution time.

  $ grep -c "^[0-9]* query" n.log
  4
  $ grep -c "sid" n.log
  0
  [1]

Restart on the same journal (chaos disarmed). Sessions are
deliberately not durable — the table starts empty and clients re-open —
but the three fsync'd requests recover like any others.

  $ ../../bin/main.exe serve --socket n.sock --listen 127.0.0.1:0 \
  >   --journal n.log --batch 4 > net2.log &
  $ NPID=$!
  $ ../../bin/main.exe query --socket n.sock --ping --retry 8 --retry-base 0.1
  pong
  $ grep -o "recovered=3" net2.log
  recovered=3
  $ PORT=$(sed -n 's/.*listening on tcp 127.0.0.1:\([0-9]*\).*/\1/p' net2.log)

Every pre-crash answer replays bit-identically through a re-opened
session — and a legacy text client shares the TCP port unchanged.

  $ ../../bin/main.exe query --socket 127.0.0.1:$PORT --binary \
  >   --session-open --lambda 0.001 -c 20 -t 500
  sid=1
  $ ../../bin/main.exe query --socket 127.0.0.1:$PORT --binary \
  >   --session 1 --left 500 > nr1
  $ cmp nq1 nr1
  $ ../../bin/main.exe query --socket 127.0.0.1:$PORT --binary \
  >   --session 1 --left 120 --recovering --kleft 2 > nr2
  $ cmp nq2 nr2
  $ ../../bin/main.exe query --socket 127.0.0.1:$PORT \
  >   --lambda 0.002 -c 40 -t 400 > nr3
  $ cmp nq3 nr3
  $ ../../bin/main.exe query --socket 127.0.0.1:$PORT --binary \
  >   --session-close 1
  sid=1

SIGTERM still drains cleanly, and the summary accounts the batched
rounds (session open/close answer directly, outside a batch).

  $ kill -TERM $NPID
  $ wait $NPID
  $ grep -o "drained accepted=6 shed=0 requests=6 answered=6" net2.log
  drained accepted=6 shed=0 requests=6 answered=6
  $ grep -o "batches=4 idle-closed=0" net2.log
  batches=4 idle-closed=0
