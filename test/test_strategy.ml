(* The strategy registry: CLI spelling round-trips, display names vs
   report labels, the compiled-table cache counters, trace-seed
   derivation, and a committed golden CSV pinning the full
   spec -> registry -> cache -> streaming-evaluator path bit-for-bit. *)

module Spec = Experiments.Spec
module Strategy = Experiments.Strategy
module Figures = Experiments.Figures
module Runner = Experiments.Runner
module Report = Experiments.Report

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

(* spelling round-trips *)

let test_round_trip () =
  let canonical =
    List.map (fun (e : Strategy.entry) -> e.Strategy.example) Strategy.entries
  in
  let quantum_variants =
    Spec.
      [
        Dynamic_programming { quantum = 0.5 };
        Dynamic_programming { quantum = 2.0 };
        Dynamic_programming { quantum = 10.0 };
        Optimal_unrestricted { quantum = 0.25 };
        Renewal_dp { quantum = 5.0 };
        (* not representable in %g: forces the exact 17-digit fallback *)
        Dynamic_programming { quantum = 1.0 /. 3.0 };
      ]
  in
  List.iter
    (fun s ->
      let spelled = Strategy.to_string s in
      match Strategy.of_string spelled with
      | Ok s' when s' = s -> ()
      | Ok s' ->
          Alcotest.failf "%S parsed back as %s, not %s" spelled
            (Spec.strategy_name s') (Spec.strategy_name s)
      | Error e -> Alcotest.failf "%S did not parse: %s" spelled e)
    (canonical @ quantum_variants)

let test_spellings () =
  let ok spelled expect =
    match Strategy.of_string spelled with
    | Ok s when s = expect -> ()
    | Ok s ->
        Alcotest.failf "%S -> %s, expected %s" spelled (Spec.strategy_name s)
          (Spec.strategy_name expect)
    | Error e -> Alcotest.failf "%S rejected: %s" spelled e
  in
  ok "dp" (Spec.Dynamic_programming { quantum = 1.0 });
  ok "dp:0.5" (Spec.Dynamic_programming { quantum = 0.5 });
  ok "optimal:2" (Spec.Optimal_unrestricted { quantum = 2.0 });
  ok "young-daly" Spec.Young_daly;
  let err spelled =
    match Strategy.of_string spelled with
    | Ok s -> Alcotest.failf "%S accepted as %s" spelled (Spec.strategy_name s)
    | Error e -> e
  in
  Alcotest.(check bool) "unknown keyword lists spellings" true
    (contains ~needle:"young-daly" (err "bogus"));
  ignore (err "dp:0");
  ignore (err "dp:nope");
  ignore (err "young-daly:2");
  (match Strategy.of_string_list " young-daly, dp:2 ,no-checkpoint" with
  | Ok
      [
        Spec.Young_daly;
        Spec.Dynamic_programming { quantum = 2.0 };
        Spec.No_checkpoint;
      ] ->
      ()
  | Ok _ -> Alcotest.fail "list parsed to the wrong strategies"
  | Error e -> Alcotest.failf "list rejected: %s" e);
  match Strategy.of_string_list "" with
  | Ok _ -> Alcotest.fail "empty list accepted"
  | Error _ -> ()

(* display names: the registry, the report labels and the compiled
   policies must all agree, strategy by strategy *)

let test_names_match_labels () =
  let params = Fault.Params.paper ~lambda:0.01 ~c:5.0 ~d:0.0 in
  let dist = Fault.Trace.Exponential { rate = 0.01 } in
  let horizon = 100.0 in
  let cache = Strategy.Cache.create () in
  List.iter
    (fun (e : Strategy.entry) ->
      let s = e.Strategy.example in
      Alcotest.(check string)
        (Strategy.to_string s ^ " registry name")
        (Spec.strategy_name s) (Strategy.name s);
      Strategy.ensure cache ~params ~horizon ~dist [ s ];
      let policy = Strategy.compile_exn cache ~params ~horizon ~dist s in
      Alcotest.(check string)
        (Strategy.to_string s ^ " policy label")
        (Spec.strategy_name s) policy.Sim.Policy.name)
    Strategy.entries

let test_listing_covers_registry () =
  let rows = Strategy.listing () in
  Alcotest.(check int) "one row per entry" (List.length Strategy.entries)
    (List.length rows);
  let md = Strategy.markdown_table () in
  Alcotest.(check bool) "markdown header" true
    (contains ~needle:"| CLI spelling | Strategy | Description |" md);
  List.iter
    (fun (cli, name, _) ->
      if not (contains ~needle:cli md && contains ~needle:name md) then
        Alcotest.failf "markdown table misses %s (%s)" cli name)
    rows

(* cache: a missing table is a diagnosed configuration error, never an
   exception out of a float-keyed assoc lookup *)

let test_missing_table_diagnosed () =
  let params = Fault.Params.paper ~lambda:0.01 ~c:5.0 ~d:0.0 in
  let dist = Fault.Trace.Exponential { rate = 0.01 } in
  let cache = Strategy.Cache.create () in
  (match
     Strategy.compile cache ~params ~horizon:100.0 ~dist
       (Spec.Dynamic_programming { quantum = 1.0 })
   with
  | Ok _ -> Alcotest.fail "compiled a DP with no table in the cache"
  | Error e ->
      let msg = Strategy.error_message e in
      Alcotest.(check bool) "message names the fix" true
        (contains ~needle:"Strategy.ensure" msg);
      Alcotest.(check bool) "message names the kind" true
        (contains ~needle:"dp(u=1)" msg));
  match
    Strategy.compile_exn cache ~params ~horizon:100.0 ~dist
      (Spec.Dynamic_programming { quantum = 1.0 })
  with
  | _ -> Alcotest.fail "compile_exn succeeded without a table"
  | exception Failure _ -> ()

(* cache counters: a two-sub-plot sweep builds each table exactly once
   and answers the duplicate sub-plot from the cache *)

let test_cache_builds_once () =
  let spec =
    match Figures.find "fig3" with
    | None -> Alcotest.fail "fig3 missing"
    | Some spec ->
        {
          (Figures.scale ~n_traces:30 ~t_step:400.0 ~t_max:1200.0 spec) with
          Spec.cs = [ 80.0; 80.0 ];
        }
  in
  let cache = Strategy.Cache.create () in
  let result = Runner.run ~cache spec in
  Alcotest.(check int) "4 strategies x 2 sub-plots" 8
    (List.length result.Runner.curves);
  (* YD needs no table; FO, NO and DP(u=1) need one kind each. The
     sweep-start warm-up builds them before the first block, so both
     sub-plots' ensure calls are answered from the cache. *)
  Alcotest.(check int) "three tables built exactly once" 3
    (Strategy.Cache.builds cache);
  Alcotest.(check int) "both sub-plots answered from the cache" 6
    (Strategy.Cache.hits cache);
  (* A second sweep against the same shared cache — the campaign
     situation (fig2 = fig7) — builds nothing further. *)
  let (_ : Runner.result) = Runner.run ~cache spec in
  Alcotest.(check int) "shared cache: no rebuild across sweeps" 3
    (Strategy.Cache.builds cache)

(* warm-up: one pass builds each distinct key exactly once, is
   idempotent, matches the serial counters when run on a pool, and a
   pre-warmed sweep reproduces the cold sweep byte for byte *)

let test_warm_up_builds_each_key_once () =
  let spec =
    match Figures.find "fig3" with
    | None -> Alcotest.fail "fig3 missing"
    | Some spec -> Figures.scale ~n_traces:10 ~t_step:400.0 ~t_max:1200.0 spec
  in
  let points = Strategy.warm_points_of_spec spec in
  Alcotest.(check int) "one warm point per sub-plot" 2 (List.length points);
  (* fig3: YD needs no table; FO, NO, DP(u=1) x 2 (params, horizon)
     blocks = 6 distinct keys. *)
  let cache = Strategy.Cache.create () in
  let built = Strategy.warm_up cache points in
  Alcotest.(check int) "builds = #distinct keys" 6 built;
  Alcotest.(check int) "cache counters agree" 6 (Strategy.Cache.builds cache);
  Alcotest.(check int) "warm-up scores no hits" 0 (Strategy.Cache.hits cache);
  Alcotest.(check int) "idempotent: nothing left to build" 0
    (Strategy.warm_up cache points);
  let pooled = Strategy.Cache.create () in
  let pool = Parallel.Pool.create () in
  let built_pooled =
    Fun.protect
      ~finally:(fun () -> Parallel.Pool.shutdown pool)
      (fun () -> Strategy.warm_up ~pool pooled points)
  in
  Alcotest.(check int) "parallel warm-up builds the same keys" 6 built_pooled;
  Alcotest.(check int) "parallel cache counters agree" 6
    (Strategy.Cache.builds pooled)

let test_warmed_sweep_identical () =
  let spec =
    match Figures.find "fig3" with
    | None -> Alcotest.fail "fig3 missing"
    | Some spec ->
        {
          (Figures.scale ~n_traces:20 ~t_step:600.0 ~t_max:1200.0 spec) with
          Spec.cs = [ 80.0 ];
        }
  in
  let csv_of result =
    let path = Filename.temp_file "fixedlen_warm" ".csv" in
    Report.to_csv result ~path;
    let got = In_channel.with_open_bin path In_channel.input_all in
    Sys.remove path;
    got
  in
  let cold_cache = Strategy.Cache.create () in
  let cold = csv_of (Runner.run ~cache:cold_cache spec) in
  let warm_cache = Strategy.Cache.create () in
  let built = Strategy.warm_up_specs warm_cache [ spec ] in
  Alcotest.(check int) "campaign warm-up built the block's tables" 3 built;
  let warmed = csv_of (Runner.run ~cache:warm_cache spec) in
  Alcotest.(check string) "warmed vs cold CSVs byte-identical" cold warmed;
  (* The pre-warmed sweep answers at least as many requests from the
     cache as the cold one (which warmed itself at sweep start). *)
  Alcotest.(check bool) "warmed hits >= cold hits" true
    (Strategy.Cache.hits warm_cache >= Strategy.Cache.hits cold_cache)

(* seed derivation: distinct (cost, salt) pairs never share a stream *)

let test_seed_distinctness () =
  let base = 0x5EED_2024L in
  (* the pair the old [int_of_float (c *. 97.0)] salt collapsed *)
  Alcotest.(check bool) "c=10.0 vs c=10.001" true
    (Runner.seed_for base ~c:10.0 ~salt:0
    <> Runner.seed_for base ~c:10.001 ~salt:0);
  Alcotest.(check bool) "salt separates streams" true
    (Runner.seed_for base ~c:10.0 ~salt:0
    <> Runner.seed_for base ~c:10.0 ~salt:1);
  (* every (cost, salt) stream any shipped spec can request, pairwise
     distinct per base seed *)
  let seen = Hashtbl.create 256 in
  List.iter
    (fun (spec : Spec.t) ->
      List.iter
        (fun c ->
          List.iteri
            (fun i _ ->
              let salt = i in
              let seed = Runner.seed_for spec.Spec.seed ~c ~salt in
              match Hashtbl.find_opt seen (spec.Spec.seed, seed) with
              | Some (id, c', salt') when c' <> c || salt' <> salt ->
                  Alcotest.failf
                    "seed collision: %s (c=%g, salt=%d) = %s (c=%g, salt=%d)"
                    spec.Spec.id c salt id c' salt'
              | _ ->
                  Hashtbl.replace seen (spec.Spec.seed, seed)
                    (spec.Spec.id, c, salt))
            (() :: List.map ignore spec.Spec.strategies))
        spec.Spec.cs)
    Figures.all

(* golden figure: the fixed-seed fig2-style sweep must stay bit-identical
   to the committed CSV across refactors of the compilation path *)

let golden_spec () =
  match Figures.find "fig2" with
  | None -> Alcotest.fail "fig2 missing"
  | Some spec -> Figures.scale ~n_traces:40 ~t_step:400.0 ~t_max:2000.0 spec

let test_golden_csv () =
  let result = Runner.run (golden_spec ()) in
  let path = Filename.temp_file "fixedlen_golden" ".csv" in
  Report.to_csv result ~path;
  let read file = In_channel.with_open_bin file In_channel.input_all in
  let got = read path in
  Sys.remove path;
  let want = read "golden_fig2_mini.csv" in
  Alcotest.(check string) "bit-identical to the committed golden" want got

let () =
  Alcotest.run "strategy"
    [
      ( "registry",
        [
          Alcotest.test_case "spelling round-trip" `Quick test_round_trip;
          Alcotest.test_case "spellings and errors" `Quick test_spellings;
          Alcotest.test_case "names agree with labels" `Quick
            test_names_match_labels;
          Alcotest.test_case "listing covers registry" `Quick
            test_listing_covers_registry;
        ] );
      ( "cache",
        [
          Alcotest.test_case "missing table diagnosed" `Quick
            test_missing_table_diagnosed;
          Alcotest.test_case "tables built once" `Slow test_cache_builds_once;
          Alcotest.test_case "warm-up builds each key once" `Quick
            test_warm_up_builds_each_key_once;
          Alcotest.test_case "warmed sweep bit-identical" `Slow
            test_warmed_sweep_identical;
        ] );
      ( "seeds",
        [ Alcotest.test_case "pairwise distinct" `Quick test_seed_distinctness ] );
      ( "golden",
        [ Alcotest.test_case "fig2-style CSV" `Slow test_golden_csv ] );
    ]
