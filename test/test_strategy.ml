(* The strategy registry: CLI spelling round-trips, display names vs
   report labels, the compiled-table cache counters, trace-seed
   derivation, and a committed golden CSV pinning the full
   spec -> registry -> cache -> streaming-evaluator path bit-for-bit. *)

module Spec = Experiments.Spec
module Strategy = Experiments.Strategy
module Figures = Experiments.Figures
module Runner = Experiments.Runner
module Report = Experiments.Report

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

(* spelling round-trips *)

let test_round_trip () =
  let canonical =
    List.map (fun (e : Strategy.entry) -> e.Strategy.example) Strategy.entries
  in
  let quantum_variants =
    Spec.
      [
        Dynamic_programming { quantum = 0.5 };
        Dynamic_programming { quantum = 2.0 };
        Dynamic_programming { quantum = 10.0 };
        Optimal_unrestricted { quantum = 0.25 };
        Renewal_dp { quantum = 5.0 };
        (* not representable in %g: forces the exact 17-digit fallback *)
        Dynamic_programming { quantum = 1.0 /. 3.0 };
      ]
  in
  List.iter
    (fun s ->
      let spelled = Strategy.to_string s in
      match Strategy.of_string spelled with
      | Ok s' when s' = s -> ()
      | Ok s' ->
          Alcotest.failf "%S parsed back as %s, not %s" spelled
            (Spec.strategy_name s') (Spec.strategy_name s)
      | Error e -> Alcotest.failf "%S did not parse: %s" spelled e)
    (canonical @ quantum_variants)

let test_spellings () =
  let ok spelled expect =
    match Strategy.of_string spelled with
    | Ok s when s = expect -> ()
    | Ok s ->
        Alcotest.failf "%S -> %s, expected %s" spelled (Spec.strategy_name s)
          (Spec.strategy_name expect)
    | Error e -> Alcotest.failf "%S rejected: %s" spelled e
  in
  ok "dp" (Spec.Dynamic_programming { quantum = 1.0 });
  ok "dp:0.5" (Spec.Dynamic_programming { quantum = 0.5 });
  ok "optimal:2" (Spec.Optimal_unrestricted { quantum = 2.0 });
  ok "young-daly" Spec.Young_daly;
  let err spelled =
    match Strategy.of_string spelled with
    | Ok s -> Alcotest.failf "%S accepted as %s" spelled (Spec.strategy_name s)
    | Error e -> e
  in
  Alcotest.(check bool) "unknown keyword lists spellings" true
    (contains ~needle:"young-daly" (err "bogus"));
  ignore (err "dp:0");
  ignore (err "dp:nope");
  ignore (err "young-daly:2");
  (match Strategy.of_string_list " young-daly, dp:2 ,no-checkpoint" with
  | Ok
      [
        Spec.Young_daly;
        Spec.Dynamic_programming { quantum = 2.0 };
        Spec.No_checkpoint;
      ] ->
      ()
  | Ok _ -> Alcotest.fail "list parsed to the wrong strategies"
  | Error e -> Alcotest.failf "list rejected: %s" e);
  match Strategy.of_string_list "" with
  | Ok _ -> Alcotest.fail "empty list accepted"
  | Error _ -> ()

(* prediction-era spellings: optional arguments, embedded commas in
   of_string_list, and out-of-range rejections *)

let test_prediction_spellings () =
  let ok spelled expect =
    match Strategy.of_string spelled with
    | Ok s when s = expect -> ()
    | Ok s ->
        Alcotest.failf "%S -> %s, expected %s" spelled (Spec.strategy_name s)
          (Spec.strategy_name expect)
    | Error e -> Alcotest.failf "%S rejected: %s" spelled e
  in
  ok "restart" Spec.Restart;
  ok "predicted-young-daly" (Spec.Predicted_young_daly { p = 1.0; r = 1.0 });
  ok "predicted-young-daly:0.8,0.9"
    (Spec.Predicted_young_daly { p = 0.8; r = 0.9 });
  ok "proactive-window" (Spec.Proactive_window { w = 60.0 });
  ok "proactive-window:45" (Spec.Proactive_window { w = 45.0 });
  let err spelled =
    match Strategy.of_string spelled with
    | Ok s -> Alcotest.failf "%S accepted as %s" spelled (Spec.strategy_name s)
    | Error e -> e
  in
  ignore (err "restart:2");
  ignore (err "predicted-young-daly:0.8");
  ignore (err "predicted-young-daly:1.5,0.5");
  ignore (err "predicted-young-daly:0.8,-0.1");
  ignore (err "proactive-window:-3");
  ignore (err "proactive-window:nope");
  (* A strategy argument may itself contain a comma: the list splitter
     only opens a new strategy at a registered keyword. *)
  match
    Strategy.of_string_list
      "young-daly, predicted-young-daly:0.8,0.9, proactive-window:45, restart"
  with
  | Ok
      [
        Spec.Young_daly;
        Spec.Predicted_young_daly { p = 0.8; r = 0.9 };
        Spec.Proactive_window { w = 45.0 };
        Spec.Restart;
      ] ->
      ()
  | Ok l ->
      Alcotest.failf "embedded comma mis-split: [%s]"
        (String.concat "; " (List.map Spec.strategy_name l))
  | Error e -> Alcotest.failf "embedded comma rejected: %s" e

(* restart is the no-proactive baseline: exactly single-final under its
   own report label *)

let test_restart_matches_single_final () =
  let params = Fault.Params.paper ~lambda:0.001 ~c:10.0 ~d:5.0 in
  let dist = Fault.Trace.Exponential { rate = 0.001 } in
  let cache = Strategy.Cache.create () in
  Strategy.ensure cache ~params ~horizon:100.0 ~dist [ Spec.Restart ];
  let policy =
    Strategy.compile_exn cache ~params ~horizon:100.0 ~dist Spec.Restart
  in
  Alcotest.(check string) "report label" "Restart" policy.Sim.Policy.name;
  Alcotest.(check int) "no table built" 0 (Strategy.Cache.builds cache);
  let run policy trace =
    Sim.Engine.run ~params ~horizon:100.0 ~policy trace
  in
  let reference = Core.Policies.single_final ~params in
  List.iter
    (fun iats ->
      let a = run policy (Fault.Trace.of_iats iats) in
      let b = run reference (Fault.Trace.of_iats iats) in
      Alcotest.(check bool) "same work as single-final" true
        (Float.equal a.Sim.Engine.work_saved b.Sim.Engine.work_saved);
      Alcotest.(check bool) "same breakdown" true
        (a.Sim.Engine.breakdown = b.Sim.Engine.breakdown))
    [ [| 1.0e9 |]; [| 50.0; 1.0e9 |]; [| 30.0; 20.0; 1.0e9 |] ]

(* fingerprints: predictor-less specs keep their exact pre-prediction
   hex (journals resume); a predictor keys the journal *)

let test_fingerprint_stability () =
  let spec =
    match Figures.find "fig2" with
    | None -> Alcotest.fail "fig2 missing"
    | Some spec -> spec
  in
  Alcotest.(check bool) "golden spec has no predictor" true
    (spec.Spec.predictor = None);
  Alcotest.(check string) "predictor-less fingerprint pinned"
    "fa064b60fd48c8ec" (Spec.fingerprint spec);
  let with_pred =
    { spec with Spec.predictor = Some { Fault.Predictor.p = 0.8; r = 0.9; w = 30.0 } }
  in
  Alcotest.(check bool) "a predictor changes the fingerprint" true
    (Spec.fingerprint with_pred <> Spec.fingerprint spec);
  let other =
    { spec with Spec.predictor = Some { Fault.Predictor.p = 0.8; r = 0.9; w = 31.0 } }
  in
  Alcotest.(check bool) "every field keys it" true
    (Spec.fingerprint other <> Spec.fingerprint with_pred)

(* display names: the registry, the report labels and the compiled
   policies must all agree, strategy by strategy *)

let test_names_match_labels () =
  let params = Fault.Params.paper ~lambda:0.01 ~c:5.0 ~d:0.0 in
  let dist = Fault.Trace.Exponential { rate = 0.01 } in
  let horizon = 100.0 in
  let cache = Strategy.Cache.create () in
  List.iter
    (fun (e : Strategy.entry) ->
      let s = e.Strategy.example in
      Alcotest.(check string)
        (Strategy.to_string s ^ " registry name")
        (Spec.strategy_name s) (Strategy.name s);
      Strategy.ensure cache ~params ~horizon ~dist [ s ];
      let policy = Strategy.compile_exn cache ~params ~horizon ~dist s in
      Alcotest.(check string)
        (Strategy.to_string s ^ " policy label")
        (Spec.strategy_name s) policy.Sim.Policy.name)
    Strategy.entries

let test_listing_covers_registry () =
  let rows = Strategy.listing () in
  Alcotest.(check int) "one row per entry" (List.length Strategy.entries)
    (List.length rows);
  let md = Strategy.markdown_table () in
  Alcotest.(check bool) "markdown header" true
    (contains ~needle:"| CLI spelling | Strategy | Description |" md);
  List.iter
    (fun (cli, name, _) ->
      if not (contains ~needle:cli md && contains ~needle:name md) then
        Alcotest.failf "markdown table misses %s (%s)" cli name)
    rows

(* cache: a missing table is a diagnosed configuration error, never an
   exception out of a float-keyed assoc lookup *)

let test_missing_table_diagnosed () =
  let params = Fault.Params.paper ~lambda:0.01 ~c:5.0 ~d:0.0 in
  let dist = Fault.Trace.Exponential { rate = 0.01 } in
  let cache = Strategy.Cache.create () in
  (match
     Strategy.compile cache ~params ~horizon:100.0 ~dist
       (Spec.Dynamic_programming { quantum = 1.0 })
   with
  | Ok _ -> Alcotest.fail "compiled a DP with no table in the cache"
  | Error e ->
      let msg = Strategy.error_message e in
      Alcotest.(check bool) "message names the fix" true
        (contains ~needle:"Strategy.ensure" msg);
      Alcotest.(check bool) "message names the kind" true
        (contains ~needle:"dp(u=1)" msg));
  match
    Strategy.compile_exn cache ~params ~horizon:100.0 ~dist
      (Spec.Dynamic_programming { quantum = 1.0 })
  with
  | _ -> Alcotest.fail "compile_exn succeeded without a table"
  | exception Failure _ -> ()

(* cache counters: a two-sub-plot sweep builds each table exactly once
   and answers the duplicate sub-plot from the cache *)

let test_cache_builds_once () =
  let spec =
    match Figures.find "fig3" with
    | None -> Alcotest.fail "fig3 missing"
    | Some spec ->
        {
          (Figures.scale ~n_traces:30 ~t_step:400.0 ~t_max:1200.0 spec) with
          Spec.cs = [ 80.0; 80.0 ];
        }
  in
  let cache = Strategy.Cache.create () in
  let result = Runner.run ~cache spec in
  Alcotest.(check int) "4 strategies x 2 sub-plots" 8
    (List.length result.Runner.curves);
  (* YD needs no table; FO, NO and DP(u=1) need one kind each. The
     sweep-start warm-up builds them before the first block, so both
     sub-plots' ensure calls are answered from the cache. *)
  Alcotest.(check int) "three tables built exactly once" 3
    (Strategy.Cache.builds cache);
  Alcotest.(check int) "both sub-plots answered from the cache" 6
    (Strategy.Cache.hits cache);
  (* A second sweep against the same shared cache — the campaign
     situation (fig2 = fig7) — builds nothing further. *)
  let (_ : Runner.result) = Runner.run ~cache spec in
  Alcotest.(check int) "shared cache: no rebuild across sweeps" 3
    (Strategy.Cache.builds cache)

(* The adaptive wrapper's re-plan hook goes through the same cache:
   the first visit to a degraded λ builds its table, every revisit
   hits. This is the counter pair the replan drill pins end to end. *)
let test_adaptive_replans_hit_cache () =
  let params = Fault.Params.paper ~lambda:0.001 ~c:20.0 ~d:5.0 in
  let dist = Fault.Trace.Exponential { rate = 0.001 } in
  let horizon = 400.0 in
  let cache = Strategy.Cache.create () in
  let inner = Spec.Dynamic_programming { quantum = 1.0 } in
  Strategy.ensure cache ~params ~horizon ~dist [ inner ];
  let policy =
    Strategy.compile_exn cache ~params ~horizon ~dist (Spec.Adaptive inner)
  in
  Alcotest.(check int) "base table built" 1 (Strategy.Cache.builds cache);
  Alcotest.(check string) "adaptive display name" "AdaptiveDynamicProgramming"
    policy.Sim.Policy.name;
  let adapt p =
    match p.Sim.Policy.adapt with
    | Some f -> f
    | None -> Alcotest.fail "adaptive policy lost its re-plan hook"
  in
  let degraded = Fault.Params.degrade params ~initial:16 ~survivors:8 in
  (* First visit to the degraded λ: a fresh table. *)
  let p1 = adapt policy degraded in
  Alcotest.(check int) "degraded λ builds" 2 (Strategy.Cache.builds cache);
  (* Re-planning back at the original λ: pure hit (the hook also
     re-checks its own level, hence >= 1 new hit, no new build). *)
  let hits_before = Strategy.Cache.hits cache in
  let p2 = adapt p1 params in
  Alcotest.(check int) "revisited λ builds nothing" 2
    (Strategy.Cache.builds cache);
  Alcotest.(check bool) "revisited λ hits" true
    (Strategy.Cache.hits cache > hits_before);
  (* And back to the degraded λ again: still no third build. *)
  let (_ : Sim.Policy.t) = adapt p2 degraded in
  Alcotest.(check int) "both levels stay resident" 2
    (Strategy.Cache.builds cache);
  Alcotest.(check int) "two resident tables" 2
    (Strategy.Cache.resident_tables cache)

(* warm-up: one pass builds each distinct key exactly once, is
   idempotent, matches the serial counters when run on a pool, and a
   pre-warmed sweep reproduces the cold sweep byte for byte *)

let test_warm_up_builds_each_key_once () =
  let spec =
    match Figures.find "fig3" with
    | None -> Alcotest.fail "fig3 missing"
    | Some spec -> Figures.scale ~n_traces:10 ~t_step:400.0 ~t_max:1200.0 spec
  in
  let points = Strategy.warm_points_of_spec spec in
  Alcotest.(check int) "one warm point per sub-plot" 2 (List.length points);
  (* fig3: YD needs no table; FO, NO, DP(u=1) x 2 (params, horizon)
     blocks = 6 distinct keys. *)
  let cache = Strategy.Cache.create () in
  let built = Strategy.warm_up cache points in
  Alcotest.(check int) "builds = #distinct keys" 6 built;
  Alcotest.(check int) "cache counters agree" 6 (Strategy.Cache.builds cache);
  Alcotest.(check int) "warm-up scores no hits" 0 (Strategy.Cache.hits cache);
  Alcotest.(check int) "idempotent: nothing left to build" 0
    (Strategy.warm_up cache points);
  let pooled = Strategy.Cache.create () in
  let pool = Parallel.Pool.create () in
  let built_pooled =
    Fun.protect
      ~finally:(fun () -> Parallel.Pool.shutdown pool)
      (fun () -> Strategy.warm_up ~pool pooled points)
  in
  Alcotest.(check int) "parallel warm-up builds the same keys" 6 built_pooled;
  Alcotest.(check int) "parallel cache counters agree" 6
    (Strategy.Cache.builds pooled)

let test_warmed_sweep_identical () =
  let spec =
    match Figures.find "fig3" with
    | None -> Alcotest.fail "fig3 missing"
    | Some spec ->
        {
          (Figures.scale ~n_traces:20 ~t_step:600.0 ~t_max:1200.0 spec) with
          Spec.cs = [ 80.0 ];
        }
  in
  let csv_of result =
    let path = Filename.temp_file "fixedlen_warm" ".csv" in
    Report.to_csv result ~path;
    let got = In_channel.with_open_bin path In_channel.input_all in
    Sys.remove path;
    got
  in
  let cold_cache = Strategy.Cache.create () in
  let cold = csv_of (Runner.run ~cache:cold_cache spec) in
  let warm_cache = Strategy.Cache.create () in
  let built = Strategy.warm_up_specs warm_cache [ spec ] in
  Alcotest.(check int) "campaign warm-up built the block's tables" 3 built;
  let warmed = csv_of (Runner.run ~cache:warm_cache spec) in
  Alcotest.(check string) "warmed vs cold CSVs byte-identical" cold warmed;
  (* The pre-warmed sweep answers at least as many requests from the
     cache as the cold one (which warmed itself at sweep start). *)
  Alcotest.(check bool) "warmed hits >= cold hits" true
    (Strategy.Cache.hits warm_cache >= Strategy.Cache.hits cold_cache)

(* LRU bound: eviction order (touch-on-lookup), counters, byte bound,
   and a rebuilt-after-eviction table being bit-identical *)

let lru_dist = Fault.Trace.Exponential { rate = 0.01 }
let lru_specs = [ Spec.Dynamic_programming { quantum = 1.0 } ]
let lru_params lambda = Fault.Params.paper ~lambda ~c:5.0 ~d:0.0

let lru_ensure cache lambda =
  Strategy.ensure cache ~params:(lru_params lambda) ~horizon:50.0
    ~dist:lru_dist lru_specs

let dp_of ?(horizon = 50.0) cache lambda =
  match
    Strategy.dp_table cache ~params:(lru_params lambda) ~horizon ~quantum:1.0
  with
  | Ok dp -> dp
  | Error e -> Alcotest.fail (Strategy.error_message e)

let test_lru_eviction_order () =
  let cache = Strategy.Cache.create ~max_tables:2 () in
  lru_ensure cache 0.01 (* build A *);
  lru_ensure cache 0.02 (* build B *);
  Alcotest.(check int) "two builds" 2 (Strategy.Cache.builds cache);
  Alcotest.(check int) "no evictions under the bound" 0
    (Strategy.Cache.evictions cache);
  lru_ensure cache 0.01 (* hit: A becomes most recent *);
  Alcotest.(check int) "hit builds nothing" 2 (Strategy.Cache.builds cache);
  Alcotest.(check int) "one hit" 1 (Strategy.Cache.hits cache);
  lru_ensure cache 0.03 (* build C: evicts B, the least recently used *);
  Alcotest.(check int) "third build" 3 (Strategy.Cache.builds cache);
  Alcotest.(check int) "one eviction" 1 (Strategy.Cache.evictions cache);
  Alcotest.(check int) "bound holds" 2 (Strategy.Cache.resident_tables cache);
  lru_ensure cache 0.01 (* the touched entry survived *);
  Alcotest.(check int) "touched entry survived" 3
    (Strategy.Cache.builds cache);
  lru_ensure cache 0.02 (* the victim is gone: rebuild *);
  Alcotest.(check int) "victim rebuilds" 4 (Strategy.Cache.builds cache);
  let st = Strategy.Cache.stats cache in
  Alcotest.(check int) "stats: builds" 4 st.Strategy.Cache.s_builds;
  Alcotest.(check int) "stats: hits" 2 st.Strategy.Cache.s_hits;
  Alcotest.(check int) "stats: evictions" 2 st.Strategy.Cache.s_evictions;
  Alcotest.(check int) "stats: resident tables" 2
    st.Strategy.Cache.s_resident_tables;
  Alcotest.(check int) "stats: resident bytes agree"
    (Strategy.Cache.resident_bytes cache)
    st.Strategy.Cache.s_resident_bytes

let test_lru_byte_bound () =
  let unbounded = Strategy.Cache.create () in
  lru_ensure unbounded 0.01;
  let one_table = Strategy.Cache.resident_bytes unbounded in
  Alcotest.(check bool) "a DP table has a positive footprint" true
    (one_table > 0);
  (* A bound smaller than one table: the lone resident entry is never
     the eviction victim, so the cache stays answerable... *)
  let cache = Strategy.Cache.create ~max_bytes:(one_table - 1) () in
  lru_ensure cache 0.01;
  Alcotest.(check int) "lone oversized table stays resident" 1
    (Strategy.Cache.resident_tables cache);
  Alcotest.(check int) "no eviction of the only entry" 0
    (Strategy.Cache.evictions cache);
  let (_ : Core.Dp.t) = dp_of cache 0.01 in
  (* ... but a second insert pushes the older one out. *)
  lru_ensure cache 0.02;
  Alcotest.(check int) "second insert evicts the first" 1
    (Strategy.Cache.evictions cache);
  Alcotest.(check int) "one table resident" 1
    (Strategy.Cache.resident_tables cache);
  Alcotest.(check bool) "resident bytes track the survivor" true
    (Strategy.Cache.resident_bytes cache > 0
    && Strategy.Cache.resident_bytes cache <= one_table + 8)

let test_lru_rebuild_bit_identical () =
  let reference = Strategy.Cache.create () in
  lru_ensure reference 0.01;
  let want = dp_of reference 0.01 in
  let cache = Strategy.Cache.create ~max_tables:1 () in
  lru_ensure cache 0.01;
  lru_ensure cache 0.02 (* evicts the 0.01 table *);
  Alcotest.(check int) "evicted" 1 (Strategy.Cache.evictions cache);
  lru_ensure cache 0.01 (* rebuild from scratch *);
  let got = dp_of cache 0.01 in
  Alcotest.(check int) "same footprint" (Core.Dp.bytes want)
    (Core.Dp.bytes got);
  Alcotest.(check int) "same kmax" (Core.Dp.kmax want) (Core.Dp.kmax got);
  for n = 0 to Core.Dp.horizon_quanta want do
    Alcotest.(check int)
      (Printf.sprintf "best_k at n=%d" n)
      (Core.Dp.best_k want ~n ~delta:false)
      (Core.Dp.best_k got ~n ~delta:false);
    for k = 1 to Core.Dp.kmax want do
      if
        Core.Dp.first_checkpoint_q want ~n ~k ~delta:false
        <> Core.Dp.first_checkpoint_q got ~n ~k ~delta:false
        || Core.Dp.expected_work_q want ~n ~k ~delta:false
           <> Core.Dp.expected_work_q got ~n ~k ~delta:false
      then Alcotest.failf "rebuilt table differs at n=%d k=%d" n k
    done
  done

(* Exact cell comparison of two DP tables through the public
   accessors; shared by the rebuild, prefix-view and jobs tests. *)
let check_same_dp ~what want got =
  Alcotest.(check int) (what ^ ": same kmax") (Core.Dp.kmax want)
    (Core.Dp.kmax got);
  Alcotest.(check int)
    (what ^ ": same horizon")
    (Core.Dp.horizon_quanta want)
    (Core.Dp.horizon_quanta got);
  for n = 0 to Core.Dp.horizon_quanta want do
    if Core.Dp.best_k want ~n ~delta:false <> Core.Dp.best_k got ~n ~delta:false
    then Alcotest.failf "%s: best_k differs at n=%d" what n;
    for k = 1 to Core.Dp.kmax want do
      if
        Core.Dp.first_checkpoint_q want ~n ~k ~delta:false
        <> Core.Dp.first_checkpoint_q got ~n ~k ~delta:false
        || Core.Dp.expected_work_q want ~n ~k ~delta:false
           <> Core.Dp.expected_work_q got ~n ~k ~delta:false
        || Core.Dp.expected_work_q want ~n ~k ~delta:true
           <> Core.Dp.expected_work_q got ~n ~k ~delta:true
      then Alcotest.failf "%s: table differs at n=%d k=%d" what n k
    done
  done

(* The incremental-reuse contract at the cache level: a sweep over
   horizons builds one table per distinct params. The largest horizon
   builds; every shorter one is answered by a zero-copy prefix view
   that counts as a hit, never a build, and charges only its
   recomputed best-k row (exact byte arithmetic below). *)
let test_horizon_sweep_builds_once () =
  let params = lru_params 0.01 in
  let cache = Strategy.Cache.create () in
  let ensure horizon =
    Strategy.ensure cache ~params ~horizon ~dist:lru_dist lru_specs
  in
  (* Campaign order: the block's maximal horizon first (warm-up and the
     per-block ensure both use it), then the sweep's shorter points. *)
  ensure 200.0;
  let parent_bytes = Strategy.Cache.resident_bytes cache in
  List.iter ensure [ 150.0; 100.0; 50.0 ];
  Alcotest.(check int) "builds = #distinct params" 1
    (Strategy.Cache.builds cache);
  Alcotest.(check int) "every shorter horizon hits" 3
    (Strategy.Cache.hits cache);
  Alcotest.(check int) "views cached under their exact keys" 4
    (Strategy.Cache.resident_tables cache);
  (* A view's slot charges exactly its best-k row: 8 bytes per column,
     T/u + 1 columns — the shared buffers stay charged to the parent. *)
  Alcotest.(check int) "views charge only their best-k rows"
    (parent_bytes + (8 * (151 + 101 + 51)))
    (Strategy.Cache.resident_bytes cache);
  let view = dp_of cache 0.01 ~horizon:100.0 in
  Alcotest.(check bool) "the short-horizon table is a view" true
    (Core.Dp.is_view view);
  (* Cell-identical to a cold build at the short horizon. *)
  let fresh_cache = Strategy.Cache.create () in
  Strategy.ensure fresh_cache ~params ~horizon:100.0 ~dist:lru_dist lru_specs;
  let fresh = dp_of fresh_cache 0.01 ~horizon:100.0 in
  Alcotest.(check bool) "the cold build owns its buffers" false
    (Core.Dp.is_view fresh);
  check_same_dp ~what:"view vs cold build" fresh view;
  (* Materialisation is one-shot: looking the view up again is an exact
     hit, no new slot, no new bytes. *)
  let before = Strategy.Cache.resident_bytes cache in
  let (_ : Core.Dp.t) = dp_of cache 0.01 ~horizon:100.0 in
  Alcotest.(check int) "second lookup is an exact hit" before
    (Strategy.Cache.resident_bytes cache);
  Alcotest.(check int) "still one build" 1 (Strategy.Cache.builds cache)

(* ?jobs plumbing: the cache's domain count comes from create or the
   FIXEDLEN_JOBS environment knob, and only reshapes the build
   schedule — a jobs=3 cache's tables are bit-identical to serial. *)
let test_cache_jobs_plumbing () =
  (* The suite itself may run under FIXEDLEN_JOBS (CI does, to push the
     parallel build through every test), so pin the env before each
     probe; an empty value is unparsable and takes the serial fallback. *)
  Unix.putenv "FIXEDLEN_JOBS" "";
  Alcotest.(check int) "default (no usable env) is serial" 1
    (Strategy.Cache.jobs (Strategy.Cache.create ()));
  Unix.putenv "FIXEDLEN_JOBS" "2";
  Alcotest.(check int) "FIXEDLEN_JOBS respected" 2
    (Strategy.Cache.jobs (Strategy.Cache.create ()));
  Unix.putenv "FIXEDLEN_JOBS" "not-a-number";
  Alcotest.(check int) "unparsable env falls back to serial" 1
    (Strategy.Cache.jobs (Strategy.Cache.create ()));
  Unix.putenv "FIXEDLEN_JOBS" "";
  (match Strategy.Cache.create ~jobs:0 () with
  | (_ : Strategy.Cache.t) -> Alcotest.fail "jobs = 0 accepted"
  | exception Invalid_argument _ -> ());
  let serial = Strategy.Cache.create ~jobs:1 () in
  let parallel = Strategy.Cache.create ~jobs:3 () in
  Alcotest.(check int) "explicit jobs" 3 (Strategy.Cache.jobs parallel);
  lru_ensure serial 0.01;
  lru_ensure parallel 0.01;
  check_same_dp ~what:"jobs=3 vs serial" (dp_of serial 0.01)
    (dp_of parallel 0.01)

let test_lru_validation () =
  List.iter
    (fun thunk ->
      match thunk () with
      | (_ : Strategy.Cache.t) -> Alcotest.fail "invalid bound accepted"
      | exception Invalid_argument _ -> ())
    [
      (fun () -> Strategy.Cache.create ~max_tables:0 ());
      (fun () -> Strategy.Cache.create ~max_bytes:0 ());
      (fun () -> Strategy.Cache.create ~max_tables:(-3) ());
    ]

(* seed derivation: distinct (cost, salt) pairs never share a stream *)

let test_seed_distinctness () =
  let base = 0x5EED_2024L in
  (* the pair the old [int_of_float (c *. 97.0)] salt collapsed *)
  Alcotest.(check bool) "c=10.0 vs c=10.001" true
    (Runner.seed_for base ~c:10.0 ~salt:0
    <> Runner.seed_for base ~c:10.001 ~salt:0);
  Alcotest.(check bool) "salt separates streams" true
    (Runner.seed_for base ~c:10.0 ~salt:0
    <> Runner.seed_for base ~c:10.0 ~salt:1);
  (* every (cost, salt) stream any shipped spec can request, pairwise
     distinct per base seed *)
  let seen = Hashtbl.create 256 in
  List.iter
    (fun (spec : Spec.t) ->
      List.iter
        (fun c ->
          List.iteri
            (fun i _ ->
              let salt = i in
              let seed = Runner.seed_for spec.Spec.seed ~c ~salt in
              match Hashtbl.find_opt seen (spec.Spec.seed, seed) with
              | Some (id, c', salt') when c' <> c || salt' <> salt ->
                  Alcotest.failf
                    "seed collision: %s (c=%g, salt=%d) = %s (c=%g, salt=%d)"
                    spec.Spec.id c salt id c' salt'
              | _ ->
                  Hashtbl.replace seen (spec.Spec.seed, seed)
                    (spec.Spec.id, c, salt))
            (() :: List.map ignore spec.Spec.strategies))
        spec.Spec.cs)
    Figures.all

(* golden figure: the fixed-seed fig2-style sweep must stay bit-identical
   to the committed CSV across refactors of the compilation path *)

let golden_spec () =
  match Figures.find "fig2" with
  | None -> Alcotest.fail "fig2 missing"
  | Some spec -> Figures.scale ~n_traces:40 ~t_step:400.0 ~t_max:2000.0 spec

let test_golden_csv () =
  let result = Runner.run (golden_spec ()) in
  let path = Filename.temp_file "fixedlen_golden" ".csv" in
  Report.to_csv result ~path;
  let read file = In_channel.with_open_bin file In_channel.input_all in
  let got = read path in
  Sys.remove path;
  let want = read "golden_fig2_mini.csv" in
  Alcotest.(check string) "bit-identical to the committed golden" want got

let () =
  Alcotest.run "strategy"
    [
      ( "registry",
        [
          Alcotest.test_case "spelling round-trip" `Quick test_round_trip;
          Alcotest.test_case "spellings and errors" `Quick test_spellings;
          Alcotest.test_case "prediction spellings" `Quick
            test_prediction_spellings;
          Alcotest.test_case "restart is single-final" `Quick
            test_restart_matches_single_final;
          Alcotest.test_case "fingerprint stability" `Quick
            test_fingerprint_stability;
          Alcotest.test_case "names agree with labels" `Quick
            test_names_match_labels;
          Alcotest.test_case "listing covers registry" `Quick
            test_listing_covers_registry;
        ] );
      ( "cache",
        [
          Alcotest.test_case "missing table diagnosed" `Quick
            test_missing_table_diagnosed;
          Alcotest.test_case "tables built once" `Slow test_cache_builds_once;
          Alcotest.test_case "adaptive re-plans hit the cache" `Quick
            test_adaptive_replans_hit_cache;
          Alcotest.test_case "warm-up builds each key once" `Quick
            test_warm_up_builds_each_key_once;
          Alcotest.test_case "warmed sweep bit-identical" `Slow
            test_warmed_sweep_identical;
          Alcotest.test_case "horizon sweep builds once" `Quick
            test_horizon_sweep_builds_once;
          Alcotest.test_case "jobs plumbing" `Quick test_cache_jobs_plumbing;
        ] );
      ( "lru",
        [
          Alcotest.test_case "eviction order and counters" `Quick
            test_lru_eviction_order;
          Alcotest.test_case "byte bound" `Quick test_lru_byte_bound;
          Alcotest.test_case "rebuild bit-identical" `Quick
            test_lru_rebuild_bit_identical;
          Alcotest.test_case "bound validation" `Quick test_lru_validation;
        ] );
      ( "seeds",
        [ Alcotest.test_case "pairwise distinct" `Quick test_seed_distinctness ] );
      ( "golden",
        [ Alcotest.test_case "fig2-style CSV" `Slow test_golden_csv ] );
    ]
