(* Benchmark harness.

   Two jobs in one executable:

   1. Figure regeneration — one entry per figure of the paper (Figures
      2-12) plus the robustness extensions: re-runs the simulation
      campaign (at a reduced default scale; use --full for the paper's
      1000-trace scale) and prints the series, summary tables and the
      qualitative shape checks recorded in EXPERIMENTS.md.

   2. Bechamel micro-benchmarks — one Test.make per computational
      kernel (DP table build, threshold computation, simulation engine,
      quantised policy evaluation, trace generation), so performance
      regressions in the algorithms are visible.

   Usage: dune exec bench/main.exe -- [--full] [--traces N] [--t-step X]
            [--figures id1,id2] [--skip-figures] [--skip-micro]
            [--eval-json PATH] [--dp-json PATH] [--baseline PATH] *)

let default_traces = 250
let default_t_step = 100.0

type options = {
  traces : int;
  t_step : float option;
  figures : string list option;
  skip_figures : bool;
  skip_micro : bool;
  eval_json : string option;
  dp_json : string option;
  baseline : string option;
  dp_baseline : string option;
  serve_json : string option;
  serve_baseline : string option;
  jobs : int;
}

let parse_args () =
  let traces = ref default_traces in
  let t_step = ref (Some default_t_step) in
  let figures = ref None in
  let skip_figures = ref false in
  let skip_micro = ref false in
  let eval_json = ref None in
  let dp_json = ref None in
  let baseline = ref None in
  let dp_baseline = ref None in
  let serve_json = ref None in
  let serve_baseline = ref None in
  let jobs =
    ref
      (match Sys.getenv_opt "FIXEDLEN_JOBS" with
      | Some s -> ( match int_of_string_opt s with Some j when j >= 1 -> j | _ -> 1)
      | None -> 1)
  in
  let rec go = function
    | [] -> ()
    | "--full" :: rest ->
        traces := 1000;
        t_step := None;
        go rest
    | "--traces" :: n :: rest ->
        traces := int_of_string n;
        go rest
    | "--t-step" :: x :: rest ->
        t_step := Some (float_of_string x);
        go rest
    | "--figures" :: ids :: rest ->
        figures := Some (String.split_on_char ',' ids);
        go rest
    | "--skip-figures" :: rest ->
        skip_figures := true;
        go rest
    | "--skip-micro" :: rest ->
        skip_micro := true;
        go rest
    | "--eval-json" :: path :: rest ->
        eval_json := Some path;
        go rest
    | "--dp-json" :: path :: rest ->
        dp_json := Some path;
        go rest
    | "--baseline" :: path :: rest ->
        baseline := Some path;
        go rest
    | "--dp-baseline" :: path :: rest ->
        dp_baseline := Some path;
        go rest
    | "--jobs" :: n :: rest ->
        jobs := int_of_string n;
        go rest
    | "--serve-json" :: path :: rest ->
        serve_json := Some path;
        go rest
    | "--serve-baseline" :: path :: rest ->
        serve_baseline := Some path;
        go rest
    | arg :: _ ->
        Printf.eprintf
          "unknown argument %s\n\
           usage: bench [--full] [--traces N] [--t-step X] [--figures ids] \
           [--skip-figures] [--skip-micro] [--jobs N] [--eval-json PATH] \
           [--dp-json PATH] [--baseline PATH] [--dp-baseline PATH] \
           [--serve-json PATH] [--serve-baseline PATH]\n"
          arg;
        exit 2
  in
  go (List.tl (Array.to_list Sys.argv));
  {
    traces = !traces;
    t_step = !t_step;
    figures = !figures;
    skip_figures = !skip_figures;
    skip_micro = !skip_micro;
    eval_json = !eval_json;
    dp_json = !dp_json;
    baseline = !baseline;
    dp_baseline = !dp_baseline;
    serve_json = !serve_json;
    serve_baseline = !serve_baseline;
    jobs = !jobs;
  }

(* ------------------------------------------------------------------ *)
(* Figure regeneration                                                  *)

let print_series (result : Experiments.Runner.result) =
  (* The rows the paper plots: T -> proportion of work per strategy. *)
  List.iter
    (fun c ->
      let curves =
        List.filter
          (fun (cv : Experiments.Runner.curve) -> cv.Experiments.Runner.c = c)
          result.Experiments.Runner.curves
      in
      match curves with
      | [] -> ()
      | first :: _ ->
          let table =
            Output.Table.create
              ~columns:
                (("T", Output.Table.Right)
                :: List.map
                     (fun (cv : Experiments.Runner.curve) ->
                       (cv.Experiments.Runner.name, Output.Table.Right))
                     curves)
          in
          Array.iteri
            (fun i (p : Experiments.Runner.point) ->
              Output.Table.add_row table
                (Printf.sprintf "%g" p.Experiments.Runner.t
                :: List.map
                     (fun (cv : Experiments.Runner.curve) ->
                       Printf.sprintf "%.3f"
                         cv.Experiments.Runner.points.(i).Experiments.Runner.mean)
                     curves))
            first.Experiments.Runner.points;
          Printf.printf "\n-- %s, C = %g: proportion of work done --\n"
            result.Experiments.Runner.spec.Experiments.Spec.id c;
          Output.Table.print table)
    result.Experiments.Runner.spec.Experiments.Spec.cs

let run_figures options pool =
  let selected =
    match options.figures with
    | None -> Experiments.Figures.all
    | Some ids ->
        List.filter_map
          (fun id ->
            match Experiments.Figures.find id with
            | Some spec -> Some spec
            | None ->
                Printf.eprintf "unknown figure %s (known: %s)\n" id
                  (String.concat ", " Experiments.Figures.ids);
                exit 2)
          ids
  in
  List.iter
    (fun spec ->
      let spec =
        Experiments.Figures.scale ~n_traces:options.traces ?t_step:options.t_step
          spec
      in
      (* Short-horizon figures (fig5) need a grid finer than the global
         step override. *)
      let spec =
        if spec.Experiments.Spec.t_step > spec.Experiments.Spec.t_max /. 10.0
        then
          Experiments.Figures.scale
            ~t_step:(spec.Experiments.Spec.t_max /. 20.0)
            spec
        else spec
      in
      Printf.printf "\n================ %s ================\n"
        spec.Experiments.Spec.id;
      Printf.printf "%s\n" spec.Experiments.Spec.description;
      let result =
        Experiments.Runner.run ~pool
          ~progress:(fun msg -> Printf.eprintf "%s\n%!" msg)
          spec
      in
      print_series result;
      print_newline ();
      Output.Table.print (Experiments.Report.summary_table result);
      print_endline "qualitative checks (paper-shape assertions):";
      print_endline
        (Experiments.Report.render_checks
           (Experiments.Report.qualitative_checks result)))
    selected

(* ------------------------------------------------------------------ *)
(* Exact (noise-free) cross-check: the same curves, computed as exact
   expectations on the quantised model — zero Monte-Carlo variance.     *)

let run_exact options =
  print_endline "\n================ exact cross-check (no Monte-Carlo) ================";
  List.iter
    (fun id ->
      match Experiments.Figures.find id with
      | None -> ()
      | Some spec ->
          let spec =
            Experiments.Figures.scale
              ?t_step:options.t_step
              spec
          in
          let curves = Experiments.Exact.figure spec in
          List.iter
            (fun c ->
              let table =
                Output.Table.create
                  ~columns:
                    [
                      ("strategy", Output.Table.Left);
                      ("mean exact prop.", Output.Table.Right);
                      ("worst exact prop.", Output.Table.Right);
                    ]
              in
              List.iter
                (fun (curve : Experiments.Exact.curve) ->
                  if curve.Experiments.Exact.c = c then begin
                    let values =
                      Array.map snd curve.Experiments.Exact.points
                    in
                    let mean =
                      Array.fold_left ( +. ) 0.0 values
                      /. float_of_int (Array.length values)
                    in
                    let worst = Array.fold_left Float.min infinity values in
                    Output.Table.add_row table
                      [
                        curve.Experiments.Exact.name;
                        Printf.sprintf "%.4f" mean;
                        Printf.sprintf "%.4f" worst;
                      ]
                  end)
                curves;
              Printf.printf "\n-- %s (exact), C = %g --\n" id c;
              Output.Table.print table)
            spec.Experiments.Spec.cs)
    [ "fig3" ]

(* ------------------------------------------------------------------ *)
(* Machine-readable evaluation benchmark (--eval-json)

   Runs one fixed, reduced-scale figure spec through the registry →
   cache → streaming-evaluator stack and writes a small JSON document:
   sweep throughput (grid points and trace evaluations per second), how
   many compiled tables the strategy cache built, and a peak-RSS proxy.
   The committed bench/BENCH_eval.json snapshots form a perf trajectory
   across PRs; CI runs this mode as a smoke test.                       *)

let peak_rss_kb () =
  (* VmHWM from /proc/self/status on Linux; elsewhere fall back to a
     GC-based proxy (major-heap words converted to kB). *)
  let from_proc () =
    let ic = open_in "/proc/self/status" in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec scan () =
          match input_line ic with
          | line ->
              if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
                Scanf.sscanf
                  (String.sub line 6 (String.length line - 6))
                  " %d kB"
                  (fun kb -> Some kb)
              else scan ()
          | exception End_of_file -> None
        in
        scan ())
  in
  match (try from_proc () with _ -> None) with
  | Some kb -> kb
  | None -> (Gc.quick_stat ()).Gc.heap_words * (Sys.word_size / 8) / 1024

let eval_json_spec () =
  (* Fixed scale, independent of --traces/--t-step, so successive
     BENCH_eval.json entries measure the same workload. *)
  match Experiments.Figures.find "fig2" with
  | Some spec -> Experiments.Figures.scale ~n_traces:200 ~t_step:200.0 spec
  | None -> failwith "--eval-json: fig2 spec missing"

let run_eval_json path =
  let spec = eval_json_spec () in
  let cache = Experiments.Strategy.Cache.create () in
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let result =
    Parallel.Pool.with_pool (fun pool ->
        Experiments.Runner.run ~pool ~cache spec)
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  let g1 = Gc.quick_stat () in
  let points =
    List.fold_left
      (fun acc (cv : Experiments.Runner.curve) ->
        acc + Array.length cv.Experiments.Runner.points)
      0 result.Experiments.Runner.curves
  in
  let traces = spec.Experiments.Spec.n_traces in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"spec\": %S,\n\
    \  \"n_traces\": %d,\n\
    \  \"t_step\": %g,\n\
    \  \"grid_points\": %d,\n\
    \  \"elapsed_sec\": %.3f,\n\
    \  \"points_per_sec\": %.2f,\n\
    \  \"trace_evals_per_sec\": %.0f,\n\
    \  \"table_builds\": %d,\n\
    \  \"table_hits\": %d,\n\
    \  \"minor_words\": %.0f,\n\
    \  \"promoted_words\": %.0f,\n\
    \  \"major_words\": %.0f,\n\
    \  \"peak_rss_kb\": %d\n\
     }\n"
    spec.Experiments.Spec.id spec.Experiments.Spec.n_traces
    spec.Experiments.Spec.t_step points elapsed
    (float_of_int points /. elapsed)
    (float_of_int (points * traces) /. elapsed)
    (Experiments.Strategy.Cache.builds cache)
    (Experiments.Strategy.Cache.hits cache)
    (g1.Gc.minor_words -. g0.Gc.minor_words)
    (g1.Gc.promoted_words -. g0.Gc.promoted_words)
    (g1.Gc.major_words -. g0.Gc.major_words)
    (peak_rss_kb ());
  close_out oc;
  Printf.printf
    "eval benchmark: %d grid points in %.2f s (%.1f points/s), %d table \
     build(s), %d cache hit(s); wrote %s\n"
    points elapsed
    (float_of_int points /. elapsed)
    (Experiments.Strategy.Cache.builds cache)
    (Experiments.Strategy.Cache.hits cache)
    path;
  float_of_int points /. elapsed

(* ------------------------------------------------------------------ *)
(* DP table-build micro-benchmark (--dp-json)

   Builds the five DP tables of the fig2 C sweep (C in {10..160},
   lambda = 0.001, D = 0, T = 2000, unit quantum, suggested_kmax cap)
   and reports table cells per second plus allocation counters. The
   committed bench/BENCH_dp.json trajectory tracks the DP core across
   PRs the same way BENCH_eval.json tracks the evaluation stack.       *)

let run_dp_json ~jobs path =
  let cs = [ 10.0; 20.0; 40.0; 80.0; 160.0 ] in
  let horizon = 2000.0 and quantum = 1.0 in
  Gc.compact ();
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let cells =
    List.fold_left
      (fun acc c ->
        let params = Fault.Params.paper ~lambda:0.001 ~c ~d:0.0 in
        let dp =
          Core.Dp.build
            ~kmax:(Core.Dp.suggested_kmax ~params ~horizon)
            ~jobs ~params ~quantum ~horizon ()
        in
        acc + (2 * Core.Dp.kmax dp * Core.Dp.horizon_quanta dp))
      0 cs
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  let g1 = Gc.quick_stat () in
  let oc = open_out path in
  (* [jobs] and the grid shape are part of the entry so the trajectory
     stays comparable: a jobs=4 measurement must only ever be gated
     against earlier jobs=4 entries (see [check_dp_baseline]), and a
     workload change shows up as a shape change instead of silently
     re-scaling cells/s. *)
  Printf.fprintf oc
    "{\n\
    \  \"workload\": \"fig2 C sweep, T=2000, u=1, suggested_kmax\",\n\
    \  \"jobs\": %d,\n\
    \  \"grid_platforms\": %d,\n\
    \  \"grid_horizon\": %g,\n\
    \  \"grid_quantum\": %g,\n\
    \  \"builds\": %d,\n\
    \  \"cells\": %d,\n\
    \  \"elapsed_sec\": %.3f,\n\
    \  \"cells_per_sec\": %.0f,\n\
    \  \"minor_words\": %.0f,\n\
    \  \"promoted_words\": %.0f,\n\
    \  \"major_words\": %.0f,\n\
    \  \"peak_rss_kb\": %d\n\
     }\n"
    jobs (List.length cs) horizon quantum (List.length cs) cells elapsed
    (float_of_int cells /. elapsed)
    (g1.Gc.minor_words -. g0.Gc.minor_words)
    (g1.Gc.promoted_words -. g0.Gc.promoted_words)
    (g1.Gc.major_words -. g0.Gc.major_words)
    (peak_rss_kb ());
  close_out oc;
  Printf.printf
    "dp benchmark: %d cells in %.2f s (%.0f cells/s, jobs=%d); wrote %s\n"
    cells elapsed
    (float_of_int cells /. elapsed)
    jobs path;
  float_of_int cells /. elapsed

(* ------------------------------------------------------------------ *)
(* Serve latency benchmark (--serve-json)

   One entry per serving mode, all in one run so the comparisons are
   apples-to-apples on the same box:

   - "handler": the daemon's request brain (Serve.Handler — the exact
     code path a worker runs per query, minus the socket), cold pass
     then warm rounds against the bounded Strategy.Cache. The run
     enforces the cache's reason to exist: warm p99 at least 10x
     better than cold p99.
   - "unix-text", "tcp-text", "tcp-binary": one persistent client
     connection to a live in-process daemon (Serve.Server.start),
     sequential request/reply round trips, warm tables.
   - "tcp-binary-batched": several binary TCP clients, each with
     server-side sessions pinned and queries pipelined in flights, so
     the daemon's worker rounds actually batch
     (Handler.handle_batch). The run enforces the tentpole: batched
     warm throughput at least 2x the sequential unix-text figure.

   The committed bench/BENCH_serve.json trajectory tracks one entry
   per mode across PRs; entries predating the "mode" field are
   handler-mode measurements. *)

let percentile sorted p =
  let n = Array.length sorted in
  sorted.(min (n - 1) (int_of_float (Float.round (p *. float_of_int (n - 1)))))

let serve_platforms = 32

let serve_request i =
  (* 32 distinct platforms: the C sweep spread the paper's figures
     use, each hashing to its own cache key. *)
  Serve.Protocol.Query
    {
      Serve.Protocol.params =
        Fault.Params.paper ~lambda:0.001 ~c:(10.0 +. (5.0 *. float_of_int i))
          ~d:0.0;
      horizon = 500.0;
      quantum = 1.0;
      tleft = 500.0;
      kleft = None;
      recovering = false;
    }

let serve_fail fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "serve benchmark: %s\n" msg;
      exit 1)
    fmt

let expect_answer = function
  | Serve.Protocol.Answer _ -> ()
  | r -> serve_fail "query failed: %s" (Serve.Protocol.render_response r)

(* Handler mode: its own cache, so the cold pass is genuinely cold. *)
let serve_handler_entry () =
  let cache = Experiments.Strategy.Cache.create () in
  let handler = Serve.Handler.create ~cache () in
  let warm_rounds = 8 in
  let timed req =
    let t0 = Unix.gettimeofday () in
    let resp = Serve.Handler.handle handler req in
    let dt = Unix.gettimeofday () -. t0 in
    expect_answer resp;
    dt
  in
  let cold = Array.init serve_platforms (fun i -> timed (serve_request i)) in
  let warm =
    Array.init (warm_rounds * serve_platforms) (fun j ->
        timed (serve_request (j mod serve_platforms)))
  in
  let warm_elapsed = Array.fold_left ( +. ) 0.0 warm in
  Array.sort compare cold;
  Array.sort compare warm;
  let ms t = t *. 1e3 in
  let cold_p50 = percentile cold 0.5 and cold_p99 = percentile cold 0.99 in
  let warm_p50 = percentile warm 0.5 and warm_p99 = percentile warm 0.99 in
  let warm_qps = float_of_int (Array.length warm) /. warm_elapsed in
  let speedup = cold_p99 /. warm_p99 in
  let entry =
    Printf.sprintf
      "{\n\
      \    \"mode\": \"handler\",\n\
      \    \"workload\": \"handler queries, %d platforms, T=500, u=1, %d \
       warm rounds\",\n\
      \    \"cold_queries\": %d,\n\
      \    \"warm_queries\": %d,\n\
      \    \"cold_p50_ms\": %.4f,\n\
      \    \"cold_p99_ms\": %.4f,\n\
      \    \"warm_p50_ms\": %.4f,\n\
      \    \"warm_p99_ms\": %.4f,\n\
      \    \"warm_qps\": %.0f,\n\
      \    \"p99_speedup\": %.1f,\n\
      \    \"table_builds\": %d,\n\
      \    \"table_hits\": %d,\n\
      \    \"peak_rss_kb\": %d\n\
      \  }"
      serve_platforms warm_rounds serve_platforms (Array.length warm)
      (ms cold_p50) (ms cold_p99) (ms warm_p50) (ms warm_p99) warm_qps
      speedup
      (Experiments.Strategy.Cache.builds cache)
      (Experiments.Strategy.Cache.hits cache)
      (peak_rss_kb ())
  in
  Printf.printf
    "serve benchmark: handler cold p99 %.2f ms, warm p99 %.4f ms (%.0fx), \
     %.0f warm queries/s\n"
    (ms cold_p99) (ms warm_p99) speedup warm_qps;
  if speedup < 10.0 then
    serve_fail
      "SERVE CACHE REGRESSION: warm p99 %.4f ms is not 10x better than cold \
       p99 %.4f ms (only %.1fx)"
      (ms warm_p99) (ms cold_p99) speedup;
  (entry, warm_qps)

(* Sequential socket mode: one persistent connection, one round trip
   per query, warm server tables. *)
let serve_sequential_qps ~socket ~binary ~rounds =
  let conn = Serve.Client.connect ~socket in
  Fun.protect
    ~finally:(fun () -> Serve.Client.close conn)
    (fun () ->
      (match Serve.Client.handshake conn ~binary with
      | Ok true -> ()
      | Ok false when not binary -> ()
      | Ok false -> serve_fail "server refused the binary hello"
      | Error msg -> serve_fail "handshake failed: %s" msg);
      let n = rounds * serve_platforms in
      let t0 = Unix.gettimeofday () in
      for j = 0 to n - 1 do
        match
          Serve.Client.request conn (serve_request (j mod serve_platforms))
        with
        | Ok resp -> expect_answer resp
        | Error msg -> serve_fail "request failed: %s" msg
      done;
      float_of_int n /. (Unix.gettimeofday () -. t0))

(* Batched mode: [clients] binary TCP connections, each with one
   session per platform, queries pipelined [flight] at a time so the
   server's worker rounds hold full batches. *)
let serve_batched_qps ~socket ~clients ~flight ~rounds =
  let per_client = rounds * serve_platforms in
  let run_client () =
    let conn = Serve.Client.connect ~socket in
    Fun.protect
      ~finally:(fun () -> Serve.Client.close conn)
      (fun () ->
        (match Serve.Client.handshake conn ~binary:true with
        | Ok true -> ()
        | Ok false -> serve_fail "server refused the binary hello"
        | Error msg -> serve_fail "handshake failed: %s" msg);
        let sids =
          Array.init serve_platforms (fun i ->
              let platform =
                match serve_request i with
                | Serve.Protocol.Query q ->
                    {
                      Serve.Protocol.plat_params = q.Serve.Protocol.params;
                      plat_horizon = q.Serve.Protocol.horizon;
                      plat_quantum = q.Serve.Protocol.quantum;
                    }
                | _ -> assert false
              in
              match
                Serve.Client.request conn
                  (Serve.Protocol.Session_open platform)
              with
              | Ok (Serve.Protocol.Session sid) -> sid
              | Ok r ->
                  serve_fail "session-open answered %s"
                    (Serve.Protocol.render_response r)
              | Error msg -> serve_fail "session-open failed: %s" msg)
        in
        let sent = ref 0 in
        while !sent < per_client do
          let k = min flight (per_client - !sent) in
          let base = !sent in
          Serve.Wire.send_many conn
            (List.init k (fun j ->
                 let sid = sids.((base + j) mod serve_platforms) in
                 Serve.Protocol.request_to_binary
                   (Serve.Protocol.Session_query
                      {
                        Serve.Protocol.sid;
                        sq_tleft = 500.0;
                        sq_kleft = None;
                        sq_recovering = false;
                      })));
          for _ = 1 to k do
            match Serve.Wire.recv conn with
            | Ok payload -> (
                match Serve.Protocol.response_of_binary payload with
                | Ok resp -> expect_answer resp
                | Error msg -> serve_fail "bad batched response: %s" msg)
            | Error e ->
                serve_fail "batched recv failed: %s" (Serve.Wire.error_message e)
          done;
          sent := !sent + k
        done)
  in
  let t0 = Unix.gettimeofday () in
  let threads = List.init clients (fun _ -> Thread.create run_client ()) in
  List.iter Thread.join threads;
  float_of_int (clients * per_client) /. (Unix.gettimeofday () -. t0)

let run_serve_json path =
  let handler_entry, handler_qps = serve_handler_entry () in
  (* One live daemon serves every socket mode: unix + TCP listeners,
     batching enabled, an ephemeral TCP port resolved after start. *)
  let socket_path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "fixedlen-bench-%d.sock" (Unix.getpid ()))
  in
  if Sys.file_exists socket_path then Sys.remove socket_path;
  let clients = 4 and flight = 16 and rounds = 8 in
  let config =
    {
      Serve.Server.socket_path;
      listen = Some "127.0.0.1:0";
      workers = 2;
      queue_capacity = 64;
      batch = clients;
      max_conns = None;
      idle_timeout = None;
      max_sessions = 1024;
      budget = None;
      slow = 0.0;
      journal = None;
      journal_rotate = None;
      journal_compact = false;
      chaos = None;
      chaos_fs = None;
      max_tables = None;
      max_bytes = None;
      jobs = None;
      quiet = true;
    }
  in
  let handle = Serve.Server.start config in
  let modes =
    Fun.protect
      ~finally:(fun () -> Serve.Server.stop handle)
      (fun () ->
        let port =
          match Serve.Server.tcp_port handle with
          | Some p -> p
          | None -> serve_fail "daemon bound no TCP port"
        in
        let tcp = Printf.sprintf "127.0.0.1:%d" port in
        (* Untimed cold pass: build all tables once so every socket
           mode below measures warm serving, like the handler rounds. *)
        ignore (serve_sequential_qps ~socket:socket_path ~binary:false ~rounds:1);
        [
          ( "unix-text",
            serve_sequential_qps ~socket:socket_path ~binary:false ~rounds );
          ("tcp-text", serve_sequential_qps ~socket:tcp ~binary:false ~rounds);
          ("tcp-binary", serve_sequential_qps ~socket:tcp ~binary:true ~rounds);
          ( "tcp-binary-batched",
            let m = Serve.Server.metrics handle in
            let r0 = Serve.Metrics.requests m
            and b0 = Serve.Metrics.batches m in
            let qps = serve_batched_qps ~socket:tcp ~clients ~flight ~rounds in
            let dr = Serve.Metrics.requests m - r0
            and db = Serve.Metrics.batches m - b0 in
            Printf.printf
              "serve benchmark: batched phase: %d requests over %d worker \
               rounds (%.1f per batch)\n"
              dr db
              (float_of_int dr /. float_of_int (max 1 db));
            qps );
        ])
  in
  let mode_qps name = List.assoc name modes in
  List.iter
    (fun (name, qps) ->
      Printf.printf "serve benchmark: %s %.0f warm queries/s\n" name qps)
    modes;
  let oc = open_out path in
  Printf.fprintf oc "[\n  %s" handler_entry;
  List.iter
    (fun (name, qps) ->
      Printf.fprintf oc
        ",\n\
        \  {\n\
        \    \"mode\": %S,\n\
        \    \"workload\": \"%s queries, %d platforms, T=500, u=1, %d warm \
         rounds%s\",\n\
        \    \"warm_queries\": %d,\n\
        \    \"warm_qps\": %.0f\n\
        \  }"
        name name serve_platforms rounds
        (if String.equal name "tcp-binary-batched" then
           Printf.sprintf ", %d clients, flight %d" clients flight
         else "")
        (rounds * serve_platforms
        * if String.equal name "tcp-binary-batched" then clients else 1)
        qps)
    modes;
  Printf.fprintf oc "\n]\n";
  close_out oc;
  Printf.printf "serve benchmark: wrote %s\n" path;
  let unix_text = mode_qps "unix-text"
  and batched = mode_qps "tcp-binary-batched" in
  if batched < 2.0 *. unix_text then
    serve_fail
      "SERVE NETWORK REGRESSION: tcp-binary-batched %.0f qps is not 2x the \
       sequential unix-text %.0f qps (only %.1fx)"
      batched unix_text (batched /. unix_text);
  ("handler", handler_qps) :: modes

(* ------------------------------------------------------------------ *)
(* Baseline regression gate (--baseline, --serve-baseline)

   Reads the last value of a key from a committed trajectory file
   (bench/BENCH_eval.json, bench/BENCH_serve.json) and fails the run
   when the fresh measurement falls below 70% of it. The generous
   margin absorbs shared-runner noise while still catching
   step-function regressions. *)

let last_json_float ~key:name path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  let key = Printf.sprintf "%S:" name in
  let klen = String.length key in
  let rec last_from pos acc =
    match String.index_from_opt body pos '"' with
    | None -> acc
    | Some q ->
        if q + klen <= len && String.sub body q klen = key then
          let rest = String.sub body (q + klen) (min 64 (len - q - klen)) in
          match Scanf.sscanf_opt rest " %f" (fun v -> v) with
          | Some v -> last_from (q + klen) (Some v)
          | None -> last_from (q + 1) acc
        else last_from (q + 1) acc
  in
  last_from 0 None

let check_floor ~path ~key ~unit fresh =
  match last_json_float ~key path with
  | None ->
      Printf.eprintf "baseline %s holds no %s entry\n" path key;
      exit 1
  | Some baseline ->
      let floor = 0.7 *. baseline in
      if fresh < floor then begin
        Printf.eprintf
          "PERF REGRESSION: %.1f %s is below 70%% of the committed baseline \
           %.1f (floor %.1f)\n"
          fresh unit baseline floor;
        exit 1
      end
      else
        Printf.printf "baseline check: %.1f %s >= 70%% of committed %.1f — ok\n"
          fresh unit baseline

let check_baseline ~path ~points_per_sec =
  check_floor ~path ~key:"points_per_sec" ~unit:"points/s" points_per_sec

(* The serve trajectory is only comparable per mode: a sequential
   unix-text figure says nothing about batched TCP throughput (and vice
   versa). Entries written before the "mode" field existed are
   handler-mode measurements, so a missing mode reads as "handler".
   Gate each fresh mode against the last same-mode entry; finding none
   is a note, not a failure — the first entry of a new mode has no
   peer yet. *)
let check_serve_baseline ~path ~modes =
  let ic = open_in path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  let float_field chunk name =
    let key = Printf.sprintf "%S:" name in
    let klen = String.length key in
    let clen = String.length chunk in
    let rec find pos =
      match String.index_from_opt chunk pos '"' with
      | None -> None
      | Some q ->
          if q + klen <= clen && String.sub chunk q klen = key then
            match
              Scanf.sscanf_opt
                (String.sub chunk (q + klen) (min 64 (clen - q - klen)))
                " %f"
                (fun v -> v)
            with
            | Some v -> Some v
            | None -> find (q + 1)
          else find (q + 1)
    in
    find 0
  in
  let string_field chunk name =
    let key = Printf.sprintf "%S:" name in
    let klen = String.length key in
    let clen = String.length chunk in
    let rec find pos =
      match String.index_from_opt chunk pos '"' with
      | None -> None
      | Some q ->
          if q + klen <= clen && String.sub chunk q klen = key then
            match
              Scanf.sscanf_opt
                (String.sub chunk (q + klen) (min 128 (clen - q - klen)))
                " %S"
                (fun v -> v)
            with
            | Some v -> Some v
            | None -> find (q + 1)
          else find (q + 1)
    in
    find 0
  in
  let baseline_for mode =
    List.fold_left
      (fun acc chunk ->
        match float_field chunk "warm_qps" with
        | None -> acc
        | Some v ->
            let entry_mode =
              match string_field chunk "mode" with
              | Some m -> m
              | None -> "handler"
            in
            if String.equal entry_mode mode then Some v else acc)
      None
      (String.split_on_char '}' body)
  in
  List.iter
    (fun (mode, qps) ->
      match baseline_for mode with
      | None ->
          Printf.printf
            "baseline check: %s holds no %s serve entry — nothing to gate \
             against\n"
            path mode
      | Some baseline ->
          let floor = 0.7 *. baseline in
          if qps < floor then begin
            Printf.eprintf
              "PERF REGRESSION: %.1f warm queries/s (%s) is below 70%% of \
               the committed baseline %.1f (floor %.1f)\n"
              qps mode baseline floor;
            exit 1
          end
          else
            Printf.printf
              "baseline check: %.1f warm queries/s (%s) >= 70%% of committed \
               %.1f — ok\n"
              qps mode baseline)
    modes

(* The dp trajectory is only comparable at equal [jobs]: a jobs=1
   cells/s figure says nothing about a jobs=4 build (and vice versa on
   a box with a different core count). Entries written before the
   field existed are single-threaded, so a missing "jobs" reads as 1.
   Gate against the last same-jobs entry; finding none is a note, not
   a failure — the first entry at a new width has no peer yet. *)
let check_dp_baseline ~path ~jobs ~cells_per_sec =
  let ic = open_in path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  let field chunk name =
    let key = Printf.sprintf "%S:" name in
    let klen = String.length key in
    let clen = String.length chunk in
    let rec find pos =
      match String.index_from_opt chunk pos '"' with
      | None -> None
      | Some q ->
          if q + klen <= clen && String.sub chunk q klen = key then
            match
              Scanf.sscanf_opt
                (String.sub chunk (q + klen) (min 64 (clen - q - klen)))
                " %f"
                (fun v -> v)
            with
            | Some v -> Some v
            | None -> find (q + 1)
          else find (q + 1)
    in
    find 0
  in
  let baseline =
    List.fold_left
      (fun acc chunk ->
        match field chunk "cells_per_sec" with
        | None -> acc
        | Some v ->
            let entry_jobs =
              match field chunk "jobs" with
              | Some j -> int_of_float j
              | None -> 1
            in
            if entry_jobs = jobs then Some v else acc)
      None
      (String.split_on_char '}' body)
  in
  match baseline with
  | None ->
      Printf.printf
        "baseline check: %s holds no jobs=%d dp entry — nothing to gate \
         against\n"
        path jobs
  | Some baseline ->
      let floor = 0.7 *. baseline in
      if cells_per_sec < floor then begin
        Printf.eprintf
          "PERF REGRESSION: %.1f cells/s (jobs=%d) is below 70%% of the \
           committed baseline %.1f (floor %.1f)\n"
          cells_per_sec jobs baseline floor;
        exit 1
      end
      else
        Printf.printf
          "baseline check: %.1f cells/s (jobs=%d) >= 70%% of committed %.1f — \
           ok\n"
          cells_per_sec jobs baseline

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the kernels                             *)

let micro_tests () =
  let open Bechamel in
  let params = Fault.Params.paper ~lambda:0.001 ~c:20.0 ~d:0.0 in
  let dp_small =
    Test.make ~name:"dp_build_T500_u1"
      (Staged.stage (fun () ->
           ignore (Core.Dp.build ~params ~quantum:1.0 ~horizon:500.0 ())))
  in
  let dp_capped =
    Test.make ~name:"dp_build_T1000_u1_capped"
      (Staged.stage (fun () ->
           ignore
             (Core.Dp.build
                ~kmax:(Core.Dp.suggested_kmax ~params ~horizon:1000.0)
                ~params ~quantum:1.0 ~horizon:1000.0 ())))
  in
  let thresholds =
    Test.make ~name:"threshold_table_numerical"
      (Staged.stage (fun () ->
           ignore (Core.Threshold.table_numerical ~params ~up_to:2000.0)))
  in
  let gain =
    Test.make ~name:"threshold_gain_n8"
      (Staged.stage (fun () ->
           ignore (Core.Threshold.gain ~params ~t:1800.0 ~n:8)))
  in
  let trace =
    Fault.Trace.create ~dist:(Fault.Trace.Exponential { rate = 0.001 }) ~seed:5L
  in
  Fault.Trace.prefetch trace ~until:2000.0;
  let yd = Core.Policies.young_daly ~params in
  let engine =
    Test.make ~name:"engine_run_T2000_young_daly"
      (Staged.stage (fun () ->
           ignore (Sim.Engine.run ~params ~horizon:2000.0 ~policy:yd trace)))
  in
  let policy_value =
    Test.make ~name:"policy_value_T500_u1"
      (Staged.stage (fun () ->
           ignore
             (Core.Expected.policy_value ~params ~quantum:1.0 ~horizon:500.0
                ~policy:yd)))
  in
  let rng = Numerics.Rng.create ~seed:7L in
  let rng_test =
    Test.make ~name:"rng_exponential_x1000"
      (Staged.stage (fun () ->
           for _ = 1 to 1000 do
             ignore (Numerics.Rng.exponential rng ~rate:0.001)
           done))
  in
  let integral =
    Test.make ~name:"single_final_integral_T500_u1"
      (Staged.stage (fun () ->
           ignore
             (Core.Expected.single_final_value ~params ~quantum:1.0
                ~horizon:500.0)))
  in
  let optimal_build =
    Test.make ~name:"optimal_build_T1000_u1"
      (Staged.stage (fun () ->
           ignore (Core.Optimal.build ~params ~quantum:1.0 ~horizon:1000.0 ())))
  in
  let dp_uncapped =
    (* ablation for the kmax cap: same tables without the cap *)
    Test.make ~name:"dp_build_T1000_u1_full_kmax"
      (Staged.stage (fun () ->
           ignore (Core.Dp.build ~params ~quantum:1.0 ~horizon:1000.0 ())))
  in
  let plan_opt =
    Test.make ~name:"plan_opt_k3_T500"
      (Staged.stage (fun () ->
           ignore
             (Core.Plan_opt.optimize ~params ~tleft:500.0 ~recovering:false
                ~k:3
                ~continuation:(fun _ -> 0.0)
                ())))
  in
  let renewal_build =
    Test.make ~name:"renewal_dp_build_T300_weibull"
      (Staged.stage (fun () ->
           ignore
             (Core.Dp_renewal.build ~params
                ~dist:(Fault.Trace.weibull_with_mtbf ~shape:0.7 ~mtbf:1000.0)
                ~quantum:1.0 ~horizon:300.0 ())))
  in
  Test.make_grouped ~name:"kernels"
    [
      dp_small; dp_capped; dp_uncapped; thresholds; gain; engine; policy_value;
      rng_test; integral; optimal_build; plan_opt; renewal_build;
    ]

let run_micro () =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~stabilize:true ~quota:(Time.second 0.5) ()
  in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  print_endline "\n================ kernel micro-benchmarks ================";
  let table =
    Output.Table.create
      ~columns:
        [ ("kernel", Output.Table.Left); ("time per run", Output.Table.Right) ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let time_ns =
        match Analyze.OLS.estimates ols_result with
        | Some (est :: _) -> est
        | _ -> nan
      in
      rows := (name, time_ns) :: !rows)
    results;
  List.iter
    (fun (name, ns) ->
      let human =
        if Float.is_nan ns then "n/a"
        else if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Output.Table.add_row table [ name; human ])
    (List.sort compare !rows);
  Output.Table.print table

let () =
  let options = parse_args () in
  Printf.printf
    "fixedlen benchmark harness — %d traces per configuration%s\n"
    options.traces
    (match options.t_step with
    | Some s -> Printf.sprintf ", grid step %g" s
    | None -> " (paper-scale grid)");
  if not options.skip_figures then begin
    Parallel.Pool.with_pool (fun pool -> run_figures options pool);
    run_exact options
  end;
  if not options.skip_micro then run_micro ();
  (match options.dp_json with
  | None -> ()
  | Some path ->
      let cells_per_sec = run_dp_json ~jobs:options.jobs path in
      Option.iter
        (fun baseline ->
          check_dp_baseline ~path:baseline ~jobs:options.jobs ~cells_per_sec)
        options.dp_baseline);
  (match options.serve_json with
  | None -> ()
  | Some path ->
      let modes = run_serve_json path in
      Option.iter
        (fun baseline -> check_serve_baseline ~path:baseline ~modes)
        options.serve_baseline);
  match options.eval_json with
  | None -> ()
  | Some path ->
      let points_per_sec = run_eval_json path in
      Option.iter
        (fun baseline -> check_baseline ~path:baseline ~points_per_sec)
        options.baseline
