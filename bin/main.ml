(* fixedlen — command-line interface to the fixed-length-reservation
   checkpointing library: figure regeneration, threshold tables, DP
   inspection, one-off simulations and the Section 4 case studies. *)

open Cmdliner

(* Shared parameter options *)

let lambda_t =
  let doc = "Failure rate λ (exponential IATs; MTBF = 1/λ)." in
  Arg.(value & opt float 0.001 & info [ "lambda" ] ~docv:"RATE" ~doc)

let c_t =
  let doc = "Checkpoint duration C." in
  Arg.(value & opt float 20.0 & info [ "c"; "checkpoint" ] ~docv:"C" ~doc)

let r_t =
  let doc = "Recovery duration R (defaults to C, the paper's convention)." in
  Arg.(value & opt (some float) None & info [ "r"; "recovery" ] ~docv:"R" ~doc)

let d_t =
  let doc = "Downtime D after a failure." in
  Arg.(value & opt float 0.0 & info [ "d"; "downtime" ] ~docv:"D" ~doc)

let params_t =
  let make lambda c r d =
    Fault.Params.make ~lambda ~c ~r:(Option.value r ~default:c) ~d
  in
  Term.(const make $ lambda_t $ c_t $ r_t $ d_t)

let quantum_t =
  let doc = "Time quantum u of the dynamic program." in
  Arg.(value & opt float 1.0 & info [ "quantum"; "u" ] ~docv:"U" ~doc)

let seed_t =
  let doc = "Random seed for trace generation." in
  Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc)

let traces_t default =
  let doc = "Number of random failure traces per configuration." in
  Arg.(value & opt int default & info [ "traces" ] ~docv:"N" ~doc)

let domains_t =
  let doc = "Worker domains for parallel sweeps (default: cores, max 8)." in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let jobs_t =
  let doc =
    "Worker domains used to build a single DP table (the k-dimension of \
     the table is swept row-parallel). Tables are bit-identical for any \
     value, so this is purely a machine knob. Default: \
     $(b,FIXEDLEN_JOBS) from the environment, else 1."
  in
  Arg.(value & opt (some int) None & info [ "jobs" ] ~docv:"N" ~doc)

(* figure / campaign *)

let t_step_t =
  let doc = "Reservation-length grid step override." in
  Arg.(value & opt (some float) None & info [ "t-step" ] ~docv:"STEP" ~doc)

let t_max_t =
  let doc = "Largest reservation length override." in
  Arg.(value & opt (some float) None & info [ "t-max" ] ~docv:"TMAX" ~doc)

let csv_t =
  let doc = "Write the sweep data to $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let no_plot_t =
  let doc = "Skip the ASCII plots." in
  Arg.(value & flag & info [ "no-plot" ] ~doc)

let quiet_t =
  let doc = "Suppress progress messages." in
  Arg.(value & flag & info [ "quiet" ] ~doc)

(* Resilience options (see lib/robust): journaled checkpoint/resume of
   the campaign itself, bounded retries, and chaos drills. *)

(* Expected operational failures (a strict-resume mismatch, a sweep that
   exhausted its retry budget) are user errors, not crashes: report them
   on stderr instead of letting cmdliner print a backtrace. *)
let or_fail f =
  try f () with
  | (Failure msg | Invalid_argument msg | Sys_error msg) ->
      Printf.eprintf "fixedlen: %s\n" msg;
      exit 1
  | Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "fixedlen: %s%s: %s\n" fn
        (if arg = "" then "" else " " ^ arg)
        (Unix.error_message e);
      exit 1
  | Experiments.Runner.Sweep_failure _ as e ->
      Printf.eprintf "fixedlen: %s\n" (Printexc.to_string e);
      exit 1

(* Strategy selection goes through the registry
   (lib/experiments/strategy): one list of entries owns the CLI
   spellings, display names and compilation of every strategy. *)

let strategies_opt_t =
  let doc =
    "Comma-separated strategy list (see $(b,fixedlen strategies) for \
     the known spellings), e.g. $(b,young-daly,dp:0.5,no-checkpoint)."
  in
  Arg.(value & opt (some string) None & info [ "strategies" ] ~docv:"LIST" ~doc)

let strategies_of = function
  | None -> None
  | Some text -> (
      match Experiments.Strategy.of_string_list text with
      | Ok strategies -> Some strategies
      | Error msg ->
          Printf.eprintf "fixedlen: %s\n" msg;
          exit 2)

(* Compile a strategy list for a one-shot command: build the required
   tables once (shared across the list), then compile in order. *)
let compile_strategies ~params ~horizon ~dist strategies =
  or_fail (fun () ->
      let cache = Experiments.Strategy.Cache.create () in
      Experiments.Strategy.ensure cache ~params ~horizon ~dist strategies;
      List.map
        (Experiments.Strategy.compile_exn cache ~params ~horizon ~dist)
        strategies)

(* Malleable-platform options: draw failures from a node-level model
   where each failure can permanently take its node down (re-scaling the
   failure rate) and spares can rejoin. See Fault.Trace.node_model. *)

let platform_events_t =
  let doc =
    "Malleability drill: draw failures from a $(docv)-node platform \
     whose nodes can be permanently lost (see $(b,--loss-rate)) and \
     replaced from a spare pool (see $(b,--spares)). Each loss or \
     rejoin re-scales the failure rate; adaptive strategies \
     ($(b,adaptive-dp), $(b,adaptive-young-daly)) re-plan online at \
     every such event."
  in
  Arg.(value & opt (some int) None
       & info [ "platform-events" ] ~docv:"NODES" ~doc)

let spares_t =
  let doc =
    "Spare nodes available to replace lost ones (with \
     $(b,--platform-events)); a spare rejoins after a fixed \
     5-time-unit provisioning delay on top of the failure's downtime."
  in
  Arg.(value & opt int 0 & info [ "spares" ] ~docv:"K" ~doc)

let loss_rate_t =
  let doc =
    "Probability that a failure permanently takes its node down (with \
     $(b,--platform-events)); 0 <= $(docv) <= 1."
  in
  Arg.(value & opt float 0.25 & info [ "loss-rate" ] ~docv:"P" ~doc)

(* Fixed 5-time-unit provisioning delay for rejoining spares (matching
   the ext-replan figure): one shared convention across figure, campaign
   and simulate rather than a fourth flag, and independent of D so
   campaigns mixing downtimes stay comparable. *)
let platform_model_of nodes spares loss_rate =
  Option.map
    (fun nodes ->
      {
        Fault.Trace.nodes;
        spares;
        loss_prob = loss_rate;
        rejoin_delay = 5.0;
      })
    nodes

(* Fault-prediction options: derive a predicted-event stream per trace
   (precision/recall/window, common random numbers) and let strategies
   with an on_prediction hook checkpoint proactively. *)

let predictor_t =
  let doc =
    "Prediction drill: derive a predicted-event stream for every trace \
     from a fault predictor with precision, recall and window width \
     $(docv) (e.g. $(b,0.8,0.7,30)). Strategies with a prediction hook \
     ($(b,predicted-young-daly), $(b,proactive-window)) may then \
     checkpoint proactively on a fired prediction; every other \
     strategy ignores predictions at zero cost."
  in
  Arg.(value & opt (some string) None
       & info [ "predictor" ] ~docv:"P,R,W" ~doc)

let predictor_of = function
  | None -> None
  | Some text -> (
      match List.map String.trim (String.split_on_char ',' text) with
      | [ ps; rs; ws ] -> (
          match
            ( float_of_string_opt ps,
              float_of_string_opt rs,
              float_of_string_opt ws )
          with
          | Some pp, Some r, Some w ->
              let pr = { Fault.Predictor.p = pp; r; w } in
              or_fail (fun () -> Fault.Predictor.validate pr);
              Some pr
          | _ ->
              Printf.eprintf
                "fixedlen: --predictor expects three numbers P,R,W, got %S\n"
                text;
              exit 2)
      | _ ->
          Printf.eprintf
            "fixedlen: --predictor expects P,R,W (precision, recall, \
             window), got %S\n"
            text;
          exit 2)

let retry_t =
  let doc =
    "Attempts per grid point (including the first). Transient task \
     failures are retried with deterministic jittered exponential \
     backoff; 1 disables retries."
  in
  Arg.(value & opt int 1 & info [ "retry" ] ~docv:"N" ~doc)

let retry_of attempts =
  if attempts < 1 then (
    Printf.eprintf "--retry must be >= 1\n";
    exit 2);
  if attempts = 1 then Robust.Retry.no_retry
  else Robust.Retry.make ~attempts ()

(* --chaos-fs injects I/O errors into journal opens and whole-file
   publishes; --retry covers those the same way it covers grid points. *)
let retry_write retry ~key f =
  match Robust.Retry.run retry ~key (fun ~attempt:_ -> f ()) with
  | Ok v -> v
  | Error e -> raise e

let chaos_rate_t =
  let doc =
    "Chaos drill: deterministically inject synthetic failures into this \
     fraction of grid-point attempts (0 <= $(docv) <= 1). Combine with \
     $(b,--retry) to verify that the curves survive unchanged."
  in
  Arg.(value & opt (some float) None & info [ "chaos" ] ~docv:"RATE" ~doc)

let chaos_hang_t =
  let doc =
    "Chaos drill: deterministically hang this fraction of grid-point \
     attempts forever (0 <= $(docv) <= 1). Requires $(b,--task-timeout): \
     only the process-isolated watchdog can kill and re-dispatch a hung \
     task."
  in
  Arg.(value & opt (some float) None & info [ "chaos-hang" ] ~docv:"RATE" ~doc)

let chaos_seed_t =
  let doc = "Seed of the chaos injection stream." in
  Arg.(value & opt int64 1L & info [ "chaos-seed" ] ~docv:"SEED" ~doc)

let chaos_of rate hang_rate seed =
  or_fail (fun () ->
      match (rate, hang_rate) with
      | None, None -> None
      | _ ->
          Some
            (Robust.Chaos.create
               ?failure_rate:rate ?hang_rate ~seed ()))

let chaos_fs_t =
  let doc =
    "Filesystem chaos drill: deterministically inject short writes and \
     I/O errors ($(b,EIO)/$(b,ENOSPC)) into this fraction of artifact \
     writes — journal appends, CSV exports, the Markdown report \
     (0 <= $(docv) <= 1). Combine with $(b,--retry) and \
     $(b,--journal) to verify the artifacts survive unchanged."
  in
  Arg.(value & opt (some float) None & info [ "chaos-fs" ] ~docv:"RATE" ~doc)

let chaos_crash_at_t =
  let doc =
    "Filesystem chaos drill: SIGKILL the process mid-write at write \
     point $(docv), given as POINT:N (e.g. $(b,journal:5) dies while \
     appending the 6th journal record, leaving a torn tail on disk). \
     Repeatable. Relaunch with $(b,--resume) to verify recovery."
  in
  Arg.(value & opt_all string []
       & info [ "chaos-crash-at" ] ~docv:"POINT:N" ~doc)

let chaos_fs_of rate crash_specs seed =
  let crash_at =
    List.map
      (fun spec ->
        match Robust.Chaos_fs.parse_crash_at spec with
        | Some pt -> pt
        | None ->
            Printf.eprintf
              "fixedlen: --chaos-crash-at expects POINT:N (e.g. journal:5), \
               got %S\n"
              spec;
            exit 2)
      crash_specs
  in
  if rate = None && crash_at = [] then None
  else
    or_fail (fun () ->
        Some
          (Robust.Chaos_fs.create ?short_write_rate:rate ?error_rate:rate
             ~crash_at ~seed ()))

(* Deadline-aware supervised execution: a wall-clock reservation budget
   for the run itself, and process isolation so hung or crashing grid
   points can be killed and re-dispatched instead of taking the process
   down. Exit code 3 distinguishes a graceful partial run (deadline hit,
   completed points journaled) from success (0) and failure (1). *)

let exit_partial = 3

let deadline_t =
  let doc =
    "Wall-clock budget in seconds for the whole run. When it expires, \
     in-flight grid points drain, completed points are fsync'd to the \
     journal, whatever curves are complete are reported, and the exit \
     code is 3 (partial) instead of crashing. Combine with \
     $(b,--journal)/$(b,--resume) to finish the rest later."
  in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)

let task_timeout_t =
  let doc =
    "Watchdog timeout in seconds for a single grid point. Implies \
     $(b,--isolate); a task that exceeds it is SIGKILLed and \
     re-dispatched up to the $(b,--retry) budget."
  in
  Arg.(value & opt (some float) None
       & info [ "task-timeout" ] ~docv:"SECONDS" ~doc)

let isolate_t =
  let doc =
    "Run each grid point in a supervised forked worker process instead \
     of an in-process domain: a crashing or hanging task then costs one \
     point (retried), not the whole run."
  in
  Arg.(value & flag & info [ "isolate" ] ~doc)

(* Validates the supervision flags and returns the effective isolate
   setting. Usage errors exit 2, like cmdliner's own. *)
let supervision_of ~isolate ~task_timeout ~chaos_hang ~deadline =
  (match task_timeout with
  | Some s when s <= 0.0 ->
      Printf.eprintf "fixedlen: --task-timeout must be > 0\n";
      exit 2
  | _ -> ());
  (match deadline with
  | Some s when s < 0.0 ->
      Printf.eprintf "fixedlen: --deadline must be >= 0\n";
      exit 2
  | _ -> ());
  if chaos_hang <> None && task_timeout = None then begin
    Printf.eprintf
      "fixedlen: --chaos-hang requires --task-timeout: a hung task can \
       only be recovered by the process-isolation watchdog\n";
    exit 2
  end;
  isolate || task_timeout <> None

let report_result ?chaos_fs ~retry ~csv ~no_plot result =
  (match csv with
  | Some path ->
      or_fail (fun () ->
          retry_write retry ~key:(Hashtbl.hash ("csv", path)) (fun () ->
              Experiments.Report.to_csv ?chaos_fs result ~path));
      Printf.printf "wrote %s\n" path
  | None -> ());
  if not no_plot then print_string (Experiments.Report.plots result);
  Output.Table.print (Experiments.Report.summary_table result);
  print_endline "qualitative checks:";
  print_endline
    (Experiments.Report.render_checks
       (Experiments.Report.qualitative_checks result))

let figure_cmd =
  let id_t =
    let doc = "Figure identifier (see $(b,fixedlen list))." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FIGURE" ~doc)
  in
  let journal_t =
    let doc =
      "Journal completed grid points to $(docv) (append-only, \
       checksummed). An existing journal produced by the same \
       spec/seed/scale is resumed; anything else is reset with a warning."
    in
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let resume_t =
    let doc =
      "Resume from journal $(docv) and keep journaling to it. Unlike \
       $(b,--journal), a file that does not match this figure's \
       spec/seed/scale is an error instead of being reset."
    in
    Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"FILE" ~doc)
  in
  let run id n_traces t_step t_max strategies platform_events spares loss_rate
      predictor csv no_plot domains jobs quiet journal resume retry chaos_rate
      chaos_hang chaos_seed chaos_fs_rate chaos_crash_at deadline task_timeout
      isolate =
    match Experiments.Figures.find id with
    | None ->
        Printf.eprintf "unknown figure %s; known: %s\n" id
          (String.concat ", " Experiments.Figures.ids);
        exit 2
    | Some spec ->
        let isolate =
          supervision_of ~isolate ~task_timeout ~chaos_hang ~deadline
        in
        let spec = Experiments.Figures.scale ?n_traces ?t_step ?t_max spec in
        (* Override before the journal opens: the fingerprint must match
           the spec actually swept. *)
        let spec =
          match strategies_of strategies with
          | None -> spec
          | Some strategies -> { spec with Experiments.Spec.strategies }
        in
        let spec =
          match platform_model_of platform_events spares loss_rate with
          | None -> spec
          | Some _ as platform -> { spec with Experiments.Spec.platform }
        in
        let spec =
          match predictor_of predictor with
          | None -> spec
          | Some _ as predictor -> { spec with Experiments.Spec.predictor }
        in
        let progress = if quiet then fun _ -> () else prerr_endline in
        let retry = retry_of retry in
        let chaos = chaos_of chaos_rate chaos_hang chaos_seed in
        let chaos_fs = chaos_fs_of chaos_fs_rate chaos_crash_at chaos_seed in
        let deadline =
          match deadline with
          | None -> Robust.Deadline.unlimited
          | Some budget -> Robust.Deadline.start ~budget ()
        in
        let journal =
          match (resume, journal) with
          | Some path, _ -> Some (path, true)
          | None, Some path -> Some (path, false)
          | None, None -> None
        in
        let result =
          or_fail (fun () ->
              let cache = Experiments.Strategy.Cache.create ?jobs () in
              Parallel.Pool.with_pool ?domains (fun pool ->
                  let backend =
                    if isolate then
                      Experiments.Runner.Processes
                        (Parallel.Proc_pool.create
                           ~workers:(Parallel.Pool.domains pool)
                           ?task_timeout
                           ~attempts:retry.Robust.Retry.attempts ())
                    else Experiments.Runner.Domains
                  in
                  match journal with
                  | None ->
                      Experiments.Runner.run ~pool ~backend ~deadline ~progress
                        ~retry ?chaos ~cache spec
                  | Some (path, strict) ->
                      let j =
                        retry_write retry ~key:(Hashtbl.hash ("journal", path))
                          (fun () ->
                            Robust.Journal.open_ ?fs:chaos_fs ~strict ~path
                              ~key:(Experiments.Spec.fingerprint spec) ())
                      in
                      List.iter progress (Robust.Journal.warnings j);
                      Fun.protect
                        ~finally:(fun () -> Robust.Journal.close j)
                        (fun () ->
                          Experiments.Runner.run ~pool ~backend ~deadline
                            ~progress ~journal:j ~retry ?chaos ~cache spec)))
        in
        report_result ?chaos_fs ~retry ~csv ~no_plot result;
        if result.Experiments.Runner.partial then begin
          Printf.eprintf
            "fixedlen: partial result — %d grid point(s) missed the deadline \
             (completed points journaled; rerun with --resume to finish)\n"
            result.Experiments.Runner.missed;
          exit exit_partial
        end
  in
  let n_traces_t =
    Arg.(value & opt (some int) None
         & info [ "traces" ] ~docv:"N" ~doc:"Traces per configuration.")
  in
  Cmd.v
    (Cmd.info "figure" ~doc:"Regenerate one figure of the paper.")
    Term.(
      const run $ id_t $ n_traces_t $ t_step_t $ t_max_t $ strategies_opt_t
      $ platform_events_t $ spares_t $ loss_rate_t $ predictor_t
      $ csv_t $ no_plot_t $ domains_t $ jobs_t $ quiet_t $ journal_t
      $ resume_t $ retry_t $ chaos_rate_t $ chaos_hang_t $ chaos_seed_t
      $ chaos_fs_t $ chaos_crash_at_t $ deadline_t $ task_timeout_t
      $ isolate_t)

let campaign_cmd =
  let out_t =
    let doc = "Directory for the CSV outputs." in
    Arg.(value & opt string "results" & info [ "out" ] ~docv:"DIR" ~doc)
  in
  let n_traces_t =
    Arg.(value & opt (some int) None
         & info [ "traces" ] ~docv:"N" ~doc:"Traces per configuration.")
  in
  let report_t =
    let doc = "Also write a Markdown experiment report to $(docv)." in
    Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE" ~doc)
  in
  let figures_only_t =
    let doc = "Comma-separated figure subset (default: all)." in
    Arg.(value & opt (some string) None & info [ "figures" ] ~docv:"IDS" ~doc)
  in
  let journal_t =
    let doc =
      "Journal completed grid points to $(docv)/<figure>.journal so an \
       interrupted campaign can pick up where it left off. Existing \
       journals matching the figure's spec/seed/scale are resumed; \
       mismatched ones are reset with a warning."
    in
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"DIR" ~doc)
  in
  let resume_t =
    let doc =
      "Resume an interrupted campaign from $(docv)/<figure>.journal, \
       skipping every already-journaled grid point, and keep journaling. \
       Unlike $(b,--journal), a journal that does not match the figure's \
       spec/seed/scale is an error instead of being reset."
    in
    Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"DIR" ~doc)
  in
  let shards_t =
    let doc =
      "Split each figure's grid across $(docv) forked shard workers, \
       each appending completed points to a private ledger \
       ($(b,DIR/<figure>.shard<s>.journal)) that the leader merges into \
       the shared journal. Requires $(b,--journal) or $(b,--resume). \
       The final CSVs are byte-identical to an unsharded run's; if a \
       worker dies, surviving ledgers are merged before the campaign \
       fails, so $(b,--resume --shards N) finishes only the rest."
    in
    Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"N" ~doc)
  in
  let run out n_traces t_step t_max report figures strategies platform_events
      spares loss_rate predictor domains jobs shards quiet journal resume
      retry chaos_rate chaos_hang chaos_seed chaos_fs_rate chaos_crash_at
      deadline task_timeout isolate =
    let isolate = supervision_of ~isolate ~task_timeout ~chaos_hang ~deadline in
    let chaos_fs = chaos_fs_of chaos_fs_rate chaos_crash_at chaos_seed in
    let journal =
      match (resume, journal) with
      | Some dir, _ -> Experiments.Campaign.Resume dir
      | None, Some dir -> Experiments.Campaign.Journal dir
      | None, None -> Experiments.Campaign.No_journal
    in
    let config =
      {
        Experiments.Campaign.out_dir = out;
        n_traces;
        t_step;
        t_max;
        figure_ids = Option.map (String.split_on_char ',') figures;
        strategies = strategies_of strategies;
        platform = platform_model_of platform_events spares loss_rate;
        predictor = predictor_of predictor;
        journal;
        retry = retry_of retry;
        chaos = chaos_of chaos_rate chaos_hang chaos_seed;
        chaos_fs;
        deadline;
        task_timeout;
        isolate;
        shards;
      }
    in
    let progress = if quiet then fun _ -> () else prerr_endline in
    let outcome =
      or_fail (fun () ->
          let cache = Experiments.Strategy.Cache.create ?jobs () in
          Parallel.Pool.with_pool ?domains (fun pool ->
              Experiments.Campaign.run ~pool ~cache ~progress config))
    in
    List.iter
      (fun (spec, result) ->
        Printf.printf "== %s ==\n" spec.Experiments.Spec.id;
        Output.Table.print (Experiments.Report.summary_table result);
        print_endline
          (Experiments.Report.render_checks
             (Experiments.Report.qualitative_checks result)))
      outcome.Experiments.Campaign.results;
    (match report with
    | None -> ()
    | Some path ->
        or_fail (fun () ->
            Experiments.Campaign.write_report ~retry:config.Experiments.Campaign.retry
              ?chaos_fs outcome ~path);
        Printf.printf "wrote %s\n" path);
    if outcome.Experiments.Campaign.partial then begin
      let missed =
        List.fold_left
          (fun acc (_, r) -> acc + r.Experiments.Runner.missed)
          0 outcome.Experiments.Campaign.results
      in
      Printf.eprintf
        "fixedlen: partial campaign — %d grid point(s) missed the deadline%s \
         (completed points journaled; rerun with --resume to finish)\n"
        missed
        (match outcome.Experiments.Campaign.skipped with
        | [] -> ""
        | ids ->
            Printf.sprintf ", figure(s) not started: %s"
              (String.concat ", " ids));
      exit exit_partial
    end
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:"Run the simulation campaign (every figure, or a subset).")
    Term.(
      const run $ out_t $ n_traces_t $ t_step_t $ t_max_t $ report_t
      $ figures_only_t $ strategies_opt_t $ platform_events_t $ spares_t
      $ loss_rate_t $ predictor_t $ domains_t $ jobs_t $ shards_t $ quiet_t
      $ journal_t $ resume_t $ retry_t $ chaos_rate_t $ chaos_hang_t
      $ chaos_seed_t $ chaos_fs_t $ chaos_crash_at_t $ deadline_t
      $ task_timeout_t $ isolate_t)

(* exact *)

let exact_cmd =
  let id_t =
    let doc = "Figure identifier (see $(b,fixedlen list))." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FIGURE" ~doc)
  in
  let run id quantum t_step t_max csv no_plot =
    match Experiments.Figures.find id with
    | None ->
        Printf.eprintf "unknown figure %s; known: %s\n" id
          (String.concat ", " Experiments.Figures.ids);
        exit 2
    | Some spec ->
        let spec = Experiments.Figures.scale ?t_step ?t_max spec in
        let curves = Experiments.Exact.figure ~quantum spec in
        (match csv with
        | Some path ->
            Experiments.Exact.to_csv ~curves ~id ~path;
            Printf.printf "wrote %s\n" path
        | None -> ());
        if not no_plot then
          print_string (Experiments.Exact.plots spec curves)
  in
  Cmd.v
    (Cmd.info "exact"
       ~doc:
        "Regenerate a figure without Monte-Carlo noise (exact expectation \
         on the quantised model; exponential failures only).")
    Term.(const run $ id_t $ quantum_t $ t_step_t $ t_max_t $ csv_t $ no_plot_t)

(* series *)

let series_cmd =
  let reservation_t =
    Arg.(value & opt float 300.0
         & info [ "reservation" ] ~docv:"T" ~doc:"Length of each reservation.")
  in
  let target_t =
    Arg.(value & opt float 3000.0
         & info [ "work" ] ~docv:"W" ~doc:"Total work of the campaign.")
  in
  let reps_t =
    Arg.(value & opt int 200
         & info [ "repetitions" ] ~docv:"N" ~doc:"Monte-Carlo repetitions.")
  in
  let run params quantum reservation target reps seed strategies =
    Printf.printf
      "campaign of %g work units in reservations of %g on %s (%d repetitions)\n"
      target reservation (Fault.Params.to_string params) reps;
    let strategies =
      match strategies_of strategies with
      | Some strategies -> strategies
      | None ->
          Experiments.Spec.
            [
              Young_daly; First_order; Numerical_optimum;
              Dynamic_programming { quantum }; Single_final;
            ]
    in
    let policies =
      compile_strategies ~params ~horizon:reservation
        ~dist:(Fault.Trace.Exponential { rate = params.Fault.Params.lambda })
        strategies
    in
    let table =
      Output.Table.create
        ~columns:
          [
            ("strategy", Output.Table.Left);
            ("reservations", Output.Table.Right);
            ("±95%", Output.Table.Right);
            ("billed time", Output.Table.Right);
            ("incomplete", Output.Table.Right);
          ]
    in
    List.iter
      (fun policy ->
        let s =
          Sim.Series.evaluate ~repetitions:reps ~params ~policy ~reservation
            ~target_work:target ~seed ()
        in
        Output.Table.add_row table
          [
            s.Sim.Series.policy;
            Printf.sprintf "%.2f" s.Sim.Series.reservations.Numerics.Stats.mean;
            Printf.sprintf "%.2f"
              s.Sim.Series.reservations.Numerics.Stats.ci95_half_width;
            Printf.sprintf "%.0f" s.Sim.Series.billed_time_mean;
            string_of_int s.Sim.Series.incomplete;
          ])
      policies;
    Output.Table.print table
  in
  Cmd.v
    (Cmd.info "series"
       ~doc:
        "Simulate a long job split into a series of fixed-length \
         reservations and compare the reservations each strategy needs.")
    Term.(
      const run $ params_t $ quantum_t $ reservation_t $ target_t $ reps_t
      $ seed_t $ strategies_opt_t)

(* breakdown *)

let breakdown_cmd =
  let t_t =
    Arg.(value & opt float 500.0
         & info [ "t"; "length" ] ~docv:"T" ~doc:"Reservation length.")
  in
  let run params quantum t seed traces strategies =
    let dist = Fault.Trace.Exponential { rate = params.Fault.Params.lambda } in
    let trace_set = Fault.Trace.batch ~dist ~seed ~n:traces in
    Printf.printf "where does the reservation go? %s, T=%g, %d traces\n"
      (Fault.Params.to_string params) t traces;
    let table =
      Output.Table.create
        ~columns:
          [
            ("strategy", Output.Table.Left);
            ("work %", Output.Table.Right);
            ("ckpt %", Output.Table.Right);
            ("recovery %", Output.Table.Right);
            ("down %", Output.Table.Right);
            ("lost %", Output.Table.Right);
            ("unused %", Output.Table.Right);
          ]
    in
    let strategies =
      match strategies_of strategies with
      | Some strategies -> strategies
      | None ->
          Experiments.Spec.
            [
              Young_daly; First_order; Numerical_optimum;
              Dynamic_programming { quantum };
            ]
    in
    let policies = compile_strategies ~params ~horizon:t ~dist strategies in
    List.iter
      (fun policy ->
        let acc = Array.make 6 0.0 in
        Array.iter
          (fun trace ->
            let o = Sim.Engine.run ~params ~horizon:t ~policy trace in
            let b = o.Sim.Engine.breakdown in
            acc.(0) <- acc.(0) +. b.Sim.Engine.working;
            acc.(1) <- acc.(1) +. b.Sim.Engine.checkpointing;
            acc.(2) <- acc.(2) +. b.Sim.Engine.recovering;
            acc.(3) <- acc.(3) +. b.Sim.Engine.down;
            acc.(4) <- acc.(4) +. b.Sim.Engine.lost;
            acc.(5) <- acc.(5) +. b.Sim.Engine.unused)
          trace_set;
        let total = t *. float_of_int traces in
        Output.Table.add_row table
          (policy.Sim.Policy.name
          :: List.map
               (fun i -> Printf.sprintf "%.1f" ((100.0 *. acc.(i) /. total) +. 0.0))
               [ 0; 1; 2; 3; 4; 5 ])
      )
      policies;
    Output.Table.print table
  in
  Cmd.v
    (Cmd.info "breakdown"
       ~doc:"Wall-clock breakdown of the reservation per strategy.")
    Term.(
      const run $ params_t $ quantum_t $ t_t $ seed_t $ traces_t 1000
      $ strategies_opt_t)

(* renewal *)

let parse_dist ~lambda spec =
  let mtbf = 1.0 /. lambda in
  match String.split_on_char ':' spec with
  | [ "exp" ] -> Fault.Trace.Exponential { rate = lambda }
  | [ "weibull"; shape ] ->
      Fault.Trace.weibull_with_mtbf ~shape:(float_of_string shape) ~mtbf
  | [ "lognormal"; sigma ] ->
      Fault.Trace.lognormal_with_mtbf ~sigma:(float_of_string sigma) ~mtbf
  | _ ->
      Printf.eprintf "unknown distribution %s\n" spec;
      exit 2

let renewal_cmd =
  let t_t =
    Arg.(value & opt float 400.0
         & info [ "t"; "length" ] ~docv:"T" ~doc:"Reservation length.")
  in
  let dist_t =
    let doc =
      "IAT distribution: exp, weibull:SHAPE or lognormal:SIGMA (MTBF = 1/λ)."
    in
    Arg.(value & opt string "weibull:0.7" & info [ "dist" ] ~docv:"DIST" ~doc)
  in
  let run params quantum t dist_spec seed traces strategies =
    let dist = parse_dist ~lambda:params.Fault.Params.lambda dist_spec in
    Printf.printf
      "renewal-aware optimum for %s failures on %s, T=%g (u=%g)\n" dist_spec
      (Fault.Params.to_string params) t quantum;
    let renewal =
      Core.Dp_renewal.build ~params ~dist ~quantum ~horizon:t ()
    in
    Printf.printf "expected work: %.4f (proportion %.4f)\n"
      (Core.Dp_renewal.value renewal ~tleft:t)
      (Core.Dp_renewal.value renewal ~tleft:t /. (t -. params.Fault.Params.c));
    let n = Core.Dp_renewal.horizon_quanta renewal in
    Printf.printf "failure-free checkpoint completions: %s\n"
      (String.concat ", "
         (List.map
            (fun q -> Printf.sprintf "%g" (float_of_int q *. quantum))
            (Core.Dp_renewal.plan_q renewal ~n ~age:0 ~delta:false)));
    (* Compare by simulation on the same traces. The renewal-aware
       policy reuses the table inspected above; the comparators compile
       through the registry. *)
    let trace_set = Fault.Trace.batch ~dist ~seed ~n:traces in
    let comparators =
      match strategies_of strategies with
      | Some strategies -> strategies
      | None ->
          Experiments.Spec.
            [
              Young_daly; First_order; Numerical_optimum;
              Dynamic_programming { quantum };
            ]
    in
    let policies =
      Core.Dp_renewal.policy renewal
      :: compile_strategies ~params ~horizon:t ~dist comparators
    in
    let table =
      Output.Table.create
        ~columns:
          [
            ("strategy", Output.Table.Left);
            ("proportion", Output.Table.Right);
            ("±95%", Output.Table.Right);
          ]
    in
    List.iter
      (fun policy ->
        let r = Sim.Runner.evaluate ~params ~horizon:t ~policy trace_set in
        Output.Table.add_row table
          [
            r.Sim.Runner.policy;
            Printf.sprintf "%.4f" r.Sim.Runner.proportion.Numerics.Stats.mean;
            Printf.sprintf "%.4f"
              r.Sim.Runner.proportion.Numerics.Stats.ci95_half_width;
          ])
      policies;
    Output.Table.print table
  in
  Cmd.v
    (Cmd.info "renewal"
       ~doc:
        "Build the renewal-aware optimum for non-memoryless failures and \
         compare it with the exponential-derived strategies.")
    Term.(
      const run $ params_t $ quantum_t $ t_t $ dist_t $ seed_t $ traces_t 2000
      $ strategies_opt_t)

(* traces *)

let traces_cmd =
  let out_t =
    Arg.(value & opt string "traces.txt"
         & info [ "out" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let n_t =
    Arg.(value & opt int 1000 & info [ "n"; "count" ] ~docv:"N" ~doc:"Number of traces.")
  in
  let horizon_t =
    Arg.(value & opt float 2000.0
         & info [ "horizon" ] ~docv:"T"
             ~doc:"Cover reservations up to this length.")
  in
  let dist_t =
    let doc =
      "IAT distribution: exp, weibull:SHAPE or lognormal:SIGMA (MTBF = 1/λ)."
    in
    Arg.(value & opt string "exp" & info [ "dist" ] ~docv:"DIST" ~doc)
  in
  let check_t =
    Arg.(value & opt (some string) None
         & info [ "check" ] ~docv:"FILE"
             ~doc:"Instead of generating, load $(docv) and summarise it.")
  in
  let run lambda out n horizon dist seed check =
    match check with
    | Some path ->
        (* A corrupt or truncated trace file is an expected operational
           error: one diagnostic line and exit 1, never a backtrace. *)
        let traces =
          match Fault.Trace_io.read ~path with
          | Ok traces -> traces
          | Error e ->
              Printf.eprintf "fixedlen: %s\n" (Fault.Trace_io.error_message e);
              exit 1
        in
        let acc = Numerics.Stats.acc_create () in
        Array.iter
          (fun tr ->
            Array.iter (Numerics.Stats.acc_add acc)
              (Fault.Trace.iats_until tr ~until:infinity))
          traces;
        let s = Numerics.Stats.summarize acc in
        Printf.printf
          "%s: %d traces, %d IATs, empirical MTBF %.2f (min %.3g, max %.3g)\n"
          path (Array.length traces) s.Numerics.Stats.count
          s.Numerics.Stats.mean s.Numerics.Stats.min s.Numerics.Stats.max
    | None ->
        let dist = parse_dist ~lambda dist in
        let traces = Fault.Trace.batch ~dist ~seed ~n in
        or_fail (fun () -> Fault.Trace_io.save ~path:out ~horizon traces);
        Printf.printf "wrote %d traces covering horizon %g to %s\n" n horizon
          out
  in
  Cmd.v
    (Cmd.info "traces"
       ~doc:"Generate (or inspect) a reusable failure-trace file.")
    Term.(
      const run $ lambda_t $ out_t $ n_t $ horizon_t $ dist_t $ seed_t
      $ check_t)

let list_cmd =
  let run () =
    List.iter
      (fun spec ->
        Printf.printf "%-20s %s\n" spec.Experiments.Spec.id
          spec.Experiments.Spec.description)
      Experiments.Figures.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the known figures.") Term.(const run $ const ())

(* strategies *)

let strategies_cmd =
  let markdown_t =
    let doc =
      "Emit the listing as a Markdown table (the README strategy table \
       is generated from this, so docs and $(b,--strategies) parsing \
       cannot drift)."
    in
    Arg.(value & flag & info [ "markdown" ] ~doc)
  in
  let run markdown =
    if markdown then print_string (Experiments.Strategy.markdown_table ())
    else
      List.iter
        (fun (cli, name, doc) -> Printf.printf "%-22s %-20s %s\n" cli name doc)
        (Experiments.Strategy.listing ())
  in
  Cmd.v
    (Cmd.info "strategies"
       ~doc:
        "List the strategy registry: CLI spellings (as accepted by \
         $(b,--strategies)), display names and descriptions.")
    Term.(const run $ markdown_t)

(* thresholds *)

let thresholds_cmd =
  let up_to_t =
    Arg.(value & opt float 2000.0
         & info [ "up-to" ] ~docv:"T" ~doc:"Largest threshold to compute.")
  in
  let run params up_to =
    let numerical = Core.Threshold.table_numerical ~params ~up_to in
    let table =
      Output.Table.create
        ~columns:
          [
            ("n", Output.Table.Right);
            ("T_n numerical", Output.Table.Right);
            ("T_n first-order", Output.Table.Right);
            ("geometric-mean approx", Output.Table.Right);
          ]
    in
    Array.iteri
      (fun i t ->
        let n = i + 1 in
        Output.Table.add_row table
          [
            string_of_int n;
            Printf.sprintf "%.2f" t;
            (if n = 1 then "0"
             else
               Printf.sprintf "%.2f"
                 (Core.Threshold.threshold_first_order ~params ~n:(n - 1)));
            (if n = 1 then "-"
             else
               Printf.sprintf "%.2f"
                 (Core.Threshold.geometric_mean_approx ~params ~n:(n - 1)));
          ])
      numerical.Core.Threshold.thresholds;
    Printf.printf "thresholds for %s (plan n checkpoints when T_n <= time left < T_n+1)\n"
      (Fault.Params.to_string params);
    Printf.printf "Young/Daly period: %.2f\n" (Core.Model.young_daly_period params);
    Output.Table.print table
  in
  Cmd.v
    (Cmd.info "thresholds"
       ~doc:"Print the threshold table of the Section 5 heuristic.")
    Term.(const run $ params_t $ up_to_t)

(* dp *)

let dp_cmd =
  let t_t =
    Arg.(value & opt float 500.0
         & info [ "t"; "length" ] ~docv:"T" ~doc:"Reservation length.")
  in
  let kmax_t =
    Arg.(value & opt (some int) None
         & info [ "kmax" ] ~docv:"K" ~doc:"Cap on the number of checkpoints.")
  in
  let run params quantum t kmax jobs =
    let dp =
      or_fail (fun () ->
          Core.Dp.build ?kmax ?jobs ~params ~quantum ~horizon:t ())
    in
    let n = Core.Dp.horizon_quanta dp in
    let k = Core.Dp.best_k dp ~n ~delta:false in
    Printf.printf "DP for %s, T=%g, u=%g (kmax=%d)\n"
      (Fault.Params.to_string params) t quantum (Core.Dp.kmax dp);
    Printf.printf "expected work: %.4f (upper bound %.4f, proportion %.4f)\n"
      (Core.Dp.expected_work dp ~tleft:t)
      (t -. params.Fault.Params.c)
      (Core.Dp.expected_work dp ~tleft:t /. (t -. params.Fault.Params.c));
    if k = 0 then print_endline "no checkpoint fits: nothing can be saved"
    else begin
      Printf.printf "optimal number of checkpoints: %d\n" k;
      let plan = Core.Dp.plan_q dp ~n ~k ~delta:false in
      Printf.printf "failure-free checkpoint completions: %s\n"
        (String.concat ", "
           (List.map (fun q -> Printf.sprintf "%g" (float_of_int q *. quantum)) plan));
      (* Compare against the heuristics. *)
      let table =
        Output.Table.create
          ~columns:
            [ ("strategy", Output.Table.Left); ("expected work", Output.Table.Right) ]
      in
      List.iter
        (fun (name, policy) ->
          let v =
            Core.Expected.policy_value ~params ~quantum ~horizon:t ~policy
          in
          Output.Table.add_row table [ name; Printf.sprintf "%.4f" v ])
        ([ ("DynamicProgramming", Core.Dp.policy dp) ]
        (* With C = 0 (free checkpoints) the heuristics degenerate —
           the Young/Daly period sqrt(2C/lambda) and every threshold
           T_n collapse to 0 — so the comparison keeps only the DP and
           the single-final bound instead of failing. *)
        @ (if params.Fault.Params.c > 0.0 then
             [
               ("NumericalOptimum",
                Core.Policies.numerical_optimum ~params ~horizon:t);
               ("FirstOrder", Core.Policies.first_order ~params ~horizon:t);
               ("YoungDaly", Core.Policies.young_daly ~params);
             ]
           else [])
        @ [ ("SingleFinal", Core.Policies.single_final ~params) ]);
      Output.Table.print table
    end
  in
  Cmd.v
    (Cmd.info "dp"
       ~doc:"Build the dynamic program and inspect the optimal strategy.")
    Term.(const run $ params_t $ quantum_t $ t_t $ kmax_t $ jobs_t)

(* simulate *)

let simulate_cmd =
  let t_t =
    Arg.(value & opt float 500.0
         & info [ "t"; "length" ] ~docv:"T" ~doc:"Reservation length.")
  in
  let run params quantum t seed traces strategies platform_events spares
      loss_rate predictor =
    let dist =
      Fault.Trace.Exponential { rate = params.Fault.Params.lambda }
    in
    let model = platform_model_of platform_events spares loss_rate in
    let predictor = predictor_of predictor in
    (* With a platform model, traces come from the node-level generator
       and each carries its own loss/rejoin schedule, replayed for every
       strategy so they face identical platform histories. *)
    let trace_set, platforms =
      match model with
      | None -> (Fault.Trace.batch ~dist ~seed ~n:traces, None)
      | Some model ->
          let histories =
            or_fail (fun () ->
                Fault.Trace.platform_batch ~model
                  ~rate:params.Fault.Params.lambda ~d:params.Fault.Params.d
                  ~horizon:t ~seed ~n:traces)
          in
          ( Array.map fst histories,
            Some
              (Array.map
                 (fun (_, events) ->
                   { Sim.Engine.initial = model.Fault.Trace.nodes; events })
                 histories) )
    in
    let strategies =
      match strategies_of strategies with
      | Some strategies -> strategies
      | None -> (
          Experiments.Spec.
            [
              Young_daly; First_order; Numerical_optimum;
              Dynamic_programming { quantum }; Single_final;
              Daly_second_order; Lambert_period;
            ]
          @
          (* On a malleable platform, the adaptive variants are the
             point of the exercise: include them by default. *)
          match model with
          | None -> []
          | Some _ ->
              Experiments.Spec.
                [
                  Adaptive Young_daly;
                  Adaptive (Dynamic_programming { quantum });
                ])
    in
    (* Prediction streams ride the runner's common-random-numbers
       convention (salt -1 of the trace seed), so `simulate` and
       `figure` agree on what a given (seed, c) predictor announces. *)
    let predictions =
      Option.map
        (fun pr ->
          or_fail (fun () ->
              Fault.Predictor.batch ~params:pr
                ~rate:params.Fault.Params.lambda ~horizon:t
                ~seed:
                  (Experiments.Runner.seed_for seed ~c:params.Fault.Params.c
                     ~salt:(-1))
                trace_set))
        predictor
    in
    let policies = compile_strategies ~params ~horizon:t ~dist strategies in
    Printf.printf "simulating %s, T=%g, %d traces%s%s\n"
      (Fault.Params.to_string params) t traces
      (match model with
      | None -> ""
      | Some m ->
          Printf.sprintf ", platform %d node(s) (%d spare(s), loss %g)"
            m.Fault.Trace.nodes m.Fault.Trace.spares m.Fault.Trace.loss_prob)
      (match predictor with
      | None -> ""
      | Some pr ->
          Printf.sprintf ", predictor p=%g r=%g w=%g" pr.Fault.Predictor.p
            pr.Fault.Predictor.r pr.Fault.Predictor.w);
    let table =
      Output.Table.create
        ~columns:
          ([
             ("strategy", Output.Table.Left);
             ("proportion", Output.Table.Right);
             ("±95%", Output.Table.Right);
             ("failures", Output.Table.Right);
             ("checkpoints", Output.Table.Right);
           ]
          @
          (* The prediction counters only appear when a predictor is
             active, keeping the default table (and its goldens) as-is. *)
          match predictor with
          | None -> []
          | Some _ ->
              [
                ("proactive", Output.Table.Right);
                ("pred TP", Output.Table.Right);
                ("pred FA", Output.Table.Right);
              ])
    in
    List.iter
      (fun policy ->
        let r =
          Sim.Runner.evaluate ?platforms ?predictions ~params ~horizon:t
            ~policy trace_set
        in
        Output.Table.add_row table
          ([
             r.Sim.Runner.policy;
             Printf.sprintf "%.4f" r.Sim.Runner.proportion.Numerics.Stats.mean;
             Printf.sprintf "%.4f"
               r.Sim.Runner.proportion.Numerics.Stats.ci95_half_width;
             Printf.sprintf "%.2f" r.Sim.Runner.mean_failures;
             Printf.sprintf "%.2f" r.Sim.Runner.mean_checkpoints;
           ]
          @
          match predictor with
          | None -> []
          | Some _ ->
              [
                Printf.sprintf "%.2f" r.Sim.Runner.mean_proactive;
                Printf.sprintf "%.2f" r.Sim.Runner.mean_predictions_true;
                Printf.sprintf "%.2f" r.Sim.Runner.mean_predictions_false;
              ]))
      policies;
    Output.Table.print table
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Evaluate every strategy on one reservation length.")
    Term.(
      const run $ params_t $ quantum_t $ t_t $ seed_t $ traces_t 1000
      $ strategies_opt_t $ platform_events_t $ spares_t $ loss_rate_t
      $ predictor_t)

(* replan — the malleability scenario (lib/experiments/replan) *)

let replan_cmd =
  let t_t =
    Arg.(value & opt float 800.0
         & info [ "t"; "length" ] ~docv:"T" ~doc:"Reservation length.")
  in
  let nodes_t =
    let doc = "Platform size in nodes." in
    Arg.(value & opt int 16 & info [ "nodes"; "platform-events" ] ~docv:"NODES" ~doc)
  in
  let rejoin_t =
    let doc = "Provisioning delay before a spare rejoins." in
    Arg.(value & opt float 5.0 & info [ "rejoin-delay" ] ~docv:"DELAY" ~doc)
  in
  let loss_grid_t =
    let doc =
      "Comma-separated node-loss probabilities to sweep (0 first proves \
       the adaptive variants match their static strategies bit for bit \
       when nothing happens)."
    in
    Arg.(value & opt string "0,0.1,0.25,0.5"
         & info [ "loss-grid" ] ~docv:"P,P,..." ~doc)
  in
  let run params quantum t nodes spares rejoin loss_grid seed traces
      strategies csv no_plot quiet =
    let loss_probs =
      let parts = String.split_on_char ',' loss_grid in
      match
        List.map (fun s -> float_of_string_opt (String.trim s)) parts
      with
      | fs when List.for_all Option.is_some fs ->
          Array.of_list (List.map Option.get fs)
      | _ ->
          Printf.eprintf "fixedlen: bad --loss-grid %S\n" loss_grid;
          exit 2
    in
    let strategies =
      match strategies_of strategies with
      | Some strategies -> strategies
      | None ->
          Experiments.Spec.
            [
              Young_daly;
              Adaptive Young_daly;
              Dynamic_programming { quantum };
              Adaptive (Dynamic_programming { quantum });
            ]
    in
    let progress = if quiet then fun _ -> () else prerr_endline in
    let result =
      or_fail (fun () ->
          Experiments.Replan.run ~progress ~params ~horizon:t ~nodes ~spares
            ~rejoin_delay:rejoin ~loss_probs ~n_traces:traces ~seed strategies)
    in
    (match csv with
    | Some path ->
        or_fail (fun () -> Experiments.Replan.to_csv result ~path);
        Printf.printf "wrote %s\n" path
    | None -> ());
    if not no_plot then print_string (Experiments.Replan.plot result);
    print_endline "qualitative checks:";
    print_endline
      (Experiments.Report.render_checks (Experiments.Replan.checks result));
    (* The drills assert on these: re-planning at a revisited degraded λ
       must be a cache hit, not a rebuild. *)
    let s = result.Experiments.Replan.cache in
    Printf.printf "cache: builds=%d hits=%d evictions=%d tables=%d\n"
      s.Experiments.Strategy.Cache.s_builds s.Experiments.Strategy.Cache.s_hits
      s.Experiments.Strategy.Cache.s_evictions
      s.Experiments.Strategy.Cache.s_resident_tables
  in
  Cmd.v
    (Cmd.info "replan"
       ~doc:
         "Malleability scenario: sweep node-loss probabilities and compare \
          static-λ strategies against online re-planning on identical \
          platform histories.")
    Term.(
      const run $ params_t $ quantum_t $ t_t $ nodes_t $ spares_t $ rejoin_t
      $ loss_grid_t $ seed_t $ traces_t 500 $ strategies_opt_t $ csv_t
      $ no_plot_t $ quiet_t)

(* predict — the fault-prediction scenario (lib/experiments/predict) *)

let predict_cmd =
  let t_t =
    Arg.(value & opt float 800.0
         & info [ "t"; "length" ] ~docv:"T" ~doc:"Reservation length.")
  in
  let grid_t ~name ~default ~doc =
    Arg.(value & opt string default & info [ name ] ~docv:"X,X,..." ~doc)
  in
  let p_grid_t =
    grid_t ~name:"p-grid" ~default:"0,0.8,1"
      ~doc:
        "Comma-separated predictor precisions to sweep (0 proves the \
         exact-float law: no stream, bit-identical to the baseline)."
  in
  let r_grid_t =
    grid_t ~name:"r-grid" ~default:"0,0.8,1"
      ~doc:
        "Comma-separated predictor recalls to sweep (0 collapses \
         predicted-young-daly onto Young/Daly bit for bit)."
  in
  let w_grid_t =
    grid_t ~name:"w-grid" ~default:"30"
      ~doc:
        "Comma-separated prediction windows to sweep (w >= C lets the \
         proactive checkpoint complete before the announced fault)."
  in
  let parse_grid ~flag text =
    let parts = String.split_on_char ',' text in
    match List.map (fun s -> float_of_string_opt (String.trim s)) parts with
    | fs when fs <> [] && List.for_all Option.is_some fs ->
        Array.of_list (List.map Option.get fs)
    | _ ->
        Printf.eprintf "fixedlen: bad --%s %S\n" flag text;
        exit 2
  in
  let run params t p_grid r_grid w_grid seed traces csv no_plot quiet =
    let ps = parse_grid ~flag:"p-grid" p_grid in
    let rs = parse_grid ~flag:"r-grid" r_grid in
    let ws = parse_grid ~flag:"w-grid" w_grid in
    let progress = if quiet then fun _ -> () else prerr_endline in
    let result =
      or_fail (fun () ->
          Experiments.Predict.run ~progress ~params ~horizon:t ~ps ~rs ~ws
            ~n_traces:traces ~seed ())
    in
    (match csv with
    | Some path ->
        or_fail (fun () -> Experiments.Predict.to_csv result ~path);
        Printf.printf "wrote %s\n" path
    | None -> ());
    if not no_plot then print_string (Experiments.Predict.plot result);
    print_endline "qualitative checks:";
    print_endline
      (Experiments.Report.render_checks (Experiments.Predict.checks result));
    (* proactive-window shares one u = 1 DP table across the whole grid:
       builds must stay at 1 no matter how many combos ran. *)
    let s = result.Experiments.Predict.cache in
    Printf.printf "cache: builds=%d hits=%d evictions=%d tables=%d\n"
      s.Experiments.Strategy.Cache.s_builds s.Experiments.Strategy.Cache.s_hits
      s.Experiments.Strategy.Cache.s_evictions
      s.Experiments.Strategy.Cache.s_resident_tables
  in
  Cmd.v
    (Cmd.info "predict"
       ~doc:
         "Fault-prediction scenario: sweep a (precision, recall, window) \
          grid and compare prediction-aware strategies against the \
          unpredicted baseline on identical failure traces.")
    Term.(
      const run $ params_t $ t_t $ p_grid_t $ r_grid_t $ w_grid_t $ seed_t
      $ traces_t 300 $ csv_t $ no_plot_t $ quiet_t)

(* analysis (Section 4 case studies) *)

let analysis_cmd =
  let run () =
    print_endline "== Section 4.2: single checkpoint in a short reservation ==";
    print_endline "setting: T=6, C=R=4, D=0; gain of checkpointing at the end";
    Printf.printf "crossover rate: ln 2 = %.6f\n" Core.Analysis.short_reservation_crossover;
    let table =
      Output.Table.create
        ~columns:
          [
            ("λ", Output.Table.Right);
            ("gain(end vs early)", Output.Table.Right);
            ("better", Output.Table.Left);
          ]
    in
    List.iter
      (fun lambda ->
        let g = Core.Analysis.short_reservation_gain ~lambda in
        Output.Table.add_row table
          [
            Printf.sprintf "%.3f" lambda;
            Printf.sprintf "%+.5f" g;
            (if g >= 0.0 then "checkpoint at the end" else "checkpoint early");
          ])
      [ 0.1; 0.3; 0.5; log 2.0; 0.8; 1.0; 1.5 ];
    Output.Table.print table;
    print_newline ();
    print_endline "== Section 4.3: optimal two-checkpoint split α_opt(T) ==";
    let params = Fault.Params.paper ~lambda:0.001 ~c:20.0 ~d:0.0 in
    let table =
      Output.Table.create
        ~columns:
          [
            ("T", Output.Table.Right);
            ("α_opt", Output.Table.Right);
            ("first ckpt at", Output.Table.Right);
            ("equal split would be", Output.Table.Right);
          ]
    in
    List.iter
      (fun t ->
        let alpha = Core.Analysis.alpha_opt ~params ~t in
        Output.Table.add_row table
          [
            Printf.sprintf "%g" t;
            Printf.sprintf "%.4f" alpha;
            Printf.sprintf "%.1f" (alpha *. t);
            Printf.sprintf "%.1f" (t /. 2.0);
          ])
      [ 100.0; 200.0; 400.0; 800.0; 1600.0; 3200.0 ];
    Output.Table.print table;
    print_endline "(α_opt → 1/2 as λ → 0: equal splitting is only asymptotically optimal)"
  in
  Cmd.v
    (Cmd.info "analysis" ~doc:"Print the Section 4 analytical case studies.")
    Term.(const run $ const ())

(* serve / query — the policy-as-a-service daemon (lib/serve) and its
   client. Exit codes extend the usual 0/1/2 with typed service
   outcomes: 4 = request shed by admission control, 5 = per-request
   budget expired. *)

let exit_overloaded = 4
let exit_timeout = 5

let socket_t =
  let doc =
    "Daemon endpoint: a Unix-domain socket path, or a TCP $(b,HOST:PORT) \
     when it contains a colon."
  in
  Arg.(value & opt string "fixedlen.sock" & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_cmd =
  let workers_t =
    let doc = "Concurrent worker loops (Parallel.Pool domains)." in
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let listen_t =
    let doc =
      "Also listen on TCP $(docv) (e.g. $(b,127.0.0.1:7070)), beside the \
       Unix socket and behind the same admission control. Port 0 binds an \
       ephemeral port, reported on the $(b,listening on tcp) line."
    in
    Arg.(value & opt (some string) None
         & info [ "listen" ] ~docv:"HOST:PORT" ~doc)
  in
  let batch_t =
    let doc =
      "Connections a worker multiplexes per pool hop — and therefore the \
       most requests answered in one handler pass, sharing a single \
       table-cache round trip per distinct platform. 1 reproduces the \
       unbatched daemon exactly."
    in
    Arg.(value & opt int 1 & info [ "batch" ] ~docv:"N" ~doc)
  in
  let max_conns_t =
    let doc =
      "Cap on concurrently admitted connections (on top of the queue \
       bound); past it, new connections are shed with $(b,overloaded)."
    in
    Arg.(value & opt (some int) None & info [ "max-conns" ] ~docv:"N" ~doc)
  in
  let idle_timeout_t =
    let doc =
      "Close connections that stay silent for $(docv) seconds, so \
       abandoned TCP peers cannot pin worker slots forever."
    in
    Arg.(value & opt (some float) None
         & info [ "idle-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let sessions_t =
    let doc =
      "LRU bound on the per-client session table ($(b,session-open) pins \
       a platform server-side so session queries carry only deltas)."
    in
    Arg.(value & opt int 1024 & info [ "sessions" ] ~docv:"N" ~doc)
  in
  let queue_t =
    let doc =
      "Admission-queue capacity. A connection arriving while the queue \
       holds $(docv) others is refused with an explicit $(b,overloaded) \
       reply instead of queueing without bound; 0 sheds everything (the \
       overload drill)."
    in
    Arg.(value & opt int 16 & info [ "queue" ] ~docv:"N" ~doc)
  in
  let budget_t =
    let doc =
      "Per-query wall-clock budget in seconds. A query that overruns it \
       is answered $(b,timeout) (the table build still completes and is \
       cached, so a retry hits)."
    in
    Arg.(value & opt (some float) None
         & info [ "request-budget" ] ~docv:"SECONDS" ~doc)
  in
  let slow_t =
    let doc =
      "Sleep this many seconds at the head of every query — the \
       deterministic way to drill $(b,--request-budget) timeouts."
    in
    Arg.(value & opt float 0.0 & info [ "slow" ] ~docv:"SECONDS" ~doc)
  in
  let journal_t =
    let doc =
      "Journal every query request to $(docv) (framed, checksummed). On \
       restart the journal is scanned, a torn tail truncated, and the \
       recovered record count reported — the crash-recovery drill."
    in
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let journal_rotate_t =
    let doc =
      "Seal the live request journal into an immutable numbered segment \
       ($(b,FILE.1), $(b,FILE.2), ...) once an append pushes it past \
       $(docv) bytes, so a long-lived daemon's live journal stays \
       bounded. Restart recovery scans segments oldest-first, then the \
       live tail."
    in
    Arg.(value & opt (some int) None
         & info [ "journal-rotate" ] ~docv:"BYTES" ~doc)
  in
  let journal_compact_t =
    let doc =
      "Before opening the request journal, merge its sealed segments \
       into one and drop byte-identical duplicate records (e.g. left by \
       a crash between a compaction's publish and its unlinks). \
       Idempotent; a no-op below two segments."
    in
    Arg.(value & flag & info [ "journal-compact" ] ~doc)
  in
  let cache_tables_t =
    let doc = "LRU bound on resident policy tables." in
    Arg.(value & opt (some int) None & info [ "cache-tables" ] ~docv:"N" ~doc)
  in
  let cache_bytes_t =
    let doc = "LRU bound on summed resident table bytes." in
    Arg.(value & opt (some int) None & info [ "cache-bytes" ] ~docv:"B" ~doc)
  in
  let run socket listen workers queue batch max_conns idle_timeout sessions
      budget slow journal journal_rotate journal_compact cache_tables
      cache_bytes jobs chaos_rate chaos_seed chaos_fs_rate chaos_crash_at
      quiet =
    if workers < 1 then begin
      Printf.eprintf "fixedlen: --workers must be >= 1\n";
      exit 2
    end;
    if queue < 0 then begin
      Printf.eprintf "fixedlen: --queue must be >= 0\n";
      exit 2
    end;
    if batch < 1 then begin
      Printf.eprintf "fixedlen: --batch must be >= 1\n";
      exit 2
    end;
    if sessions < 1 then begin
      Printf.eprintf "fixedlen: --sessions must be >= 1\n";
      exit 2
    end;
    (match max_conns with
    | Some m when m < 1 ->
        Printf.eprintf "fixedlen: --max-conns must be >= 1\n";
        exit 2
    | _ -> ());
    (match idle_timeout with
    | Some s when s <= 0.0 ->
        Printf.eprintf "fixedlen: --idle-timeout must be positive\n";
        exit 2
    | _ -> ());
    (match journal_rotate with
    | Some b when b <= 0 ->
        Printf.eprintf "fixedlen: --journal-rotate must be positive\n";
        exit 2
    | _ -> ());
    let chaos = chaos_of chaos_rate None chaos_seed in
    let chaos_fs = chaos_fs_of chaos_fs_rate chaos_crash_at chaos_seed in
    let cfg =
      {
        Serve.Server.socket_path = socket;
        listen;
        workers;
        queue_capacity = queue;
        batch;
        max_conns;
        idle_timeout;
        max_sessions = sessions;
        budget;
        slow;
        journal;
        journal_rotate;
        journal_compact;
        chaos;
        chaos_fs;
        max_tables = cache_tables;
        max_bytes = cache_bytes;
        jobs;
        quiet;
      }
    in
    exit (or_fail (fun () -> Serve.Server.run cfg))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve checkpoint-policy queries over a Unix-domain socket (and \
          optionally TCP with $(b,--listen)) until SIGTERM (drains \
          gracefully; survives SIGKILL via the request journal).")
    Term.(
      const run $ socket_t $ listen_t $ workers_t $ queue_t $ batch_t
      $ max_conns_t $ idle_timeout_t $ sessions_t $ budget_t $ slow_t
      $ journal_t $ journal_rotate_t $ journal_compact_t $ cache_tables_t
      $ cache_bytes_t $ jobs_t $ chaos_rate_t $ chaos_seed_t $ chaos_fs_t
      $ chaos_crash_at_t $ quiet_t)

let query_cmd =
  let horizon_t =
    Arg.(value & opt float 500.0
         & info [ "t"; "length" ] ~docv:"T"
             ~doc:"Reservation length (the horizon the DP tables cover).")
  in
  let tleft_t =
    let doc = "Remaining reservation time (defaults to the full length)." in
    Arg.(value & opt (some float) None & info [ "left" ] ~docv:"TIME" ~doc)
  in
  let kleft_t =
    let doc =
      "Checkpoints still available when re-planning (with \
       $(b,--recovering)); unconstrained when omitted."
    in
    Arg.(value & opt (some int) None & info [ "kleft" ] ~docv:"K" ~doc)
  in
  let recovering_t =
    let doc = "Plan the post-failure (δ = 1) state: recover first." in
    Arg.(value & flag & info [ "recovering" ] ~doc)
  in
  let ping_t =
    let doc = "Just ping the daemon." in
    Arg.(value & flag & info [ "ping" ] ~doc)
  in
  let stats_t =
    let doc = "Ask for the daemon's cache statistics." in
    Arg.(value & flag & info [ "stats" ] ~doc)
  in
  let session_open_t =
    let doc =
      "Open a server-side session pinning the platform \
       ($(b,--lambda)/$(b,-c)/$(b,-r)/$(b,-d), $(b,--t), $(b,--quantum)); \
       prints the granted $(b,sid=N)."
    in
    Arg.(value & flag & info [ "session-open" ] ~doc)
  in
  let session_t =
    let doc =
      "Query through session $(docv) instead of sending the platform: \
       only $(b,--left)/$(b,--kleft)/$(b,--recovering) travel."
    in
    Arg.(value & opt (some int) None & info [ "session" ] ~docv:"SID" ~doc)
  in
  let session_close_t =
    let doc = "Close session $(docv)." in
    Arg.(value & opt (some int) None
         & info [ "session-close" ] ~docv:"SID" ~doc)
  in
  let binary_t =
    let doc =
      "Negotiate the binary wire encoding for this connection (the \
       daemon still journals canonical text)."
    in
    Arg.(value & flag & info [ "binary" ] ~doc)
  in
  let max_frame_t =
    let doc =
      "Request a per-connection frame bound of $(docv) bytes in the \
       hello (the server clamps asks into its [4 KiB, 64 MiB] band)."
    in
    Arg.(value & opt (some int) None & info [ "max-frame" ] ~docv:"BYTES" ~doc)
  in
  let retry_seed_t =
    let doc =
      "Seed for the retry jitter stream, making shed-retry runs \
       deterministic (also: $(b,FIXEDLEN_SERVE_SEED))."
    in
    Arg.(value & opt (some int64) None
         & info [ "retry-seed" ] ~docv:"SEED" ~doc)
  in
  let count_t =
    let doc = "Send the request $(docv) times over one connection." in
    Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"N" ~doc)
  in
  let retry_base_t =
    let doc = "Base backoff delay between retries, in seconds." in
    Arg.(value & opt float 0.05 & info [ "retry-base" ] ~docv:"SECONDS" ~doc)
  in
  let decorrelated_t =
    let doc =
      "Back off with decorrelated jitter instead of exponential — what a \
       herd of shed clients should use."
    in
    Arg.(value & flag & info [ "retry-decorrelated" ] ~doc)
  in
  let code_of = function
    | Serve.Protocol.Answer _ | Serve.Protocol.Pong
    | Serve.Protocol.Stats_reply _ | Serve.Protocol.Session _ ->
        0
    | Serve.Protocol.Overloaded -> exit_overloaded
    | Serve.Protocol.Timeout -> exit_timeout
    | Serve.Protocol.Failed _ -> 1
  in
  let run socket params quantum horizon tleft kleft recovering ping stats
      session_open session session_close binary max_frame count attempts
      retry_base decorrelated retry_seed =
    if count < 1 then begin
      Printf.eprintf "fixedlen: --repeat must be >= 1\n";
      exit 2
    end;
    (* A server that sheds us closes before reading: that must surface
       as its [overloaded] reply, not kill us with SIGPIPE. *)
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let request =
      if ping then Serve.Protocol.Ping
      else if stats then Serve.Protocol.Stats
      else if session_open then
        Serve.Protocol.Session_open
          {
            Serve.Protocol.plat_params = params;
            plat_horizon = horizon;
            plat_quantum = quantum;
          }
      else
        match (session_close, session) with
        | Some sid, _ -> Serve.Protocol.Session_close sid
        | None, Some sid ->
            Serve.Protocol.Session_query
              {
                Serve.Protocol.sid;
                sq_tleft = Option.value tleft ~default:horizon;
                sq_kleft = kleft;
                sq_recovering = recovering;
              }
        | None, None ->
            Serve.Protocol.Query
              {
                Serve.Protocol.params;
                horizon;
                quantum;
                tleft = Option.value tleft ~default:horizon;
                kleft;
                recovering;
              }
    in
    let retry =
      if attempts <= 1 then Robust.Retry.no_retry
      else
        Robust.Retry.make ~attempts ~base_delay:retry_base ~decorrelated ()
    in
    let finish resp =
      print_endline (Serve.Protocol.render_response resp);
      code_of resp
    in
    let code =
      or_fail (fun () ->
          if count = 1 then
            match
              Serve.Client.query ~retry ?seed:retry_seed ~binary ?max_frame
                ~socket request
            with
            | Ok resp -> finish resp
            | Error msg -> failwith msg
          else begin
            let conn = Serve.Client.connect ~socket in
            Fun.protect
              ~finally:(fun () -> Serve.Client.close conn)
              (fun () ->
                (match Serve.Client.handshake ?max_frame conn ~binary with
                | Ok _ -> ()
                | Error msg -> failwith msg);
                let code = ref 0 in
                for _ = 1 to count do
                  match Serve.Client.request conn request with
                  | Ok resp -> code := finish resp
                  | Error msg -> failwith msg
                done;
                !code)
          end)
    in
    exit code
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Ask a running daemon for the optimal next checkpoint (exit \
          codes: 0 answered, 4 overloaded, 5 timeout).")
    Term.(
      const run $ socket_t $ params_t $ quantum_t $ horizon_t $ tleft_t
      $ kleft_t $ recovering_t $ ping_t $ stats_t $ session_open_t
      $ session_t $ session_close_t $ binary_t $ max_frame_t $ count_t
      $ retry_t $ retry_base_t $ decorrelated_t $ retry_seed_t)

let main_cmd =
  let doc =
    "checkpointing strategies for a fixed-length execution (Benoit, \
     Perotin, Robert, Vivien — RR-9552 / SC 2024)"
  in
  Cmd.group
    (Cmd.info "fixedlen" ~version:"1.0.0" ~doc)
    [
      figure_cmd; campaign_cmd; list_cmd; strategies_cmd; thresholds_cmd;
      dp_cmd; simulate_cmd; replan_cmd; predict_cmd; analysis_cmd; series_cmd;
      breakdown_cmd; traces_cmd; renewal_cmd; exact_cmd; serve_cmd; query_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
